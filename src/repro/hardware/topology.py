"""Socket / physical-core / hardware-thread topology.

The paper's system under test is a 2-socket Haswell-EP server: 12 physical
cores per socket, 2 HyperThreads per core, one memory (NUMA) domain per
socket.  The ECL and the DBMS runtime address compute resources by *global
hardware-thread id*, so the topology provides bidirectional mappings
between global thread ids and (socket, core, sibling) coordinates.

Thread numbering follows the common Linux enumeration: thread ids
``0 .. S*C-1`` are the first siblings of every core (socket-major), and ids
``S*C .. 2*S*C-1`` are the HyperThread siblings in the same order.  With the
default preset, threads 0–11 are socket 0 first-siblings, 12–23 socket 1
first-siblings, 24–35 socket 0 HT siblings, 36–47 socket 1 HT siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import TopologyError


@dataclass(frozen=True)
class HardwareThread:
    """One hardware thread (logical CPU).

    Attributes:
        global_id: system-wide thread id.
        socket_id: owning socket.
        core_id: socket-local physical-core index.
        sibling_index: 0 for the first thread of the core, 1 for its
            HyperThread sibling.
    """

    global_id: int
    socket_id: int
    core_id: int
    sibling_index: int

    @property
    def is_hyperthread_sibling(self) -> bool:
        """True if this is the second logical thread of its physical core."""
        return self.sibling_index > 0


@dataclass(frozen=True)
class PhysicalCore:
    """One physical core and its hardware threads."""

    socket_id: int
    core_id: int
    threads: tuple[HardwareThread, ...]

    def thread_ids(self) -> tuple[int, ...]:
        """Global ids of this core's hardware threads (memoized: the
        topology is immutable and this sits on the C-state hot path)."""
        cached = self.__dict__.get("_thread_ids")
        if cached is None:
            cached = tuple(t.global_id for t in self.threads)
            self.__dict__["_thread_ids"] = cached
        return cached


@dataclass(frozen=True)
class Socket:
    """One processor package (socket) with its cores and NUMA domain."""

    socket_id: int
    cores: tuple[PhysicalCore, ...]

    @property
    def core_count(self) -> int:
        """Number of physical cores on this socket."""
        return len(self.cores)

    def thread_ids(self) -> tuple[int, ...]:
        """Global ids of all hardware threads on this socket (memoized:
        the topology is immutable and fingerprints ask on every step)."""
        cached = self.__dict__.get("_thread_ids")
        if cached is None:
            cached = tuple(
                t.global_id for core in self.cores for t in core.threads
            )
            self.__dict__["_thread_ids"] = cached
        return cached

    def first_sibling_ids(self) -> tuple[int, ...]:
        """Global ids of the first thread of each physical core."""
        return tuple(core.threads[0].global_id for core in self.cores)


@dataclass(frozen=True)
class Topology:
    """Immutable description of the machine's compute topology.

    Build instances with :meth:`Topology.build`; the constructor expects an
    already-consistent socket tuple and is primarily used internally.
    """

    sockets: tuple[Socket, ...]
    _threads_by_id: dict[int, HardwareThread] = field(
        default_factory=dict, repr=False, compare=False
    )

    @staticmethod
    def build(
        socket_count: int,
        cores_per_socket: int | Sequence[int],
        threads_per_core: int = 2,
    ) -> "Topology":
        """Construct a topology.

        Args:
            socket_count: number of processor packages (>= 1).
            cores_per_socket: physical cores per package (>= 1) — either
                one count shared by every socket, or a sequence with one
                count per socket for heterogeneous (cluster) machines.
            threads_per_core: hardware threads per core (1 or 2);
                uniform across the machine.

        Raises:
            TopologyError: on non-positive sizes or unsupported SMT width.
        """
        if isinstance(cores_per_socket, int):
            core_counts = [cores_per_socket] * max(socket_count, 0)
        else:
            core_counts = list(cores_per_socket)
            if len(core_counts) != socket_count:
                raise TopologyError(
                    f"cores_per_socket lists {len(core_counts)} sockets, "
                    f"expected {socket_count}"
                )
        if socket_count < 1 or any(c < 1 for c in core_counts):
            raise TopologyError(
                "socket_count and cores_per_socket must be >= 1, got "
                f"{socket_count} and {cores_per_socket}"
            )
        if threads_per_core not in (1, 2):
            raise TopologyError(
                f"threads_per_core must be 1 or 2, got {threads_per_core}"
            )

        total_cores = sum(core_counts)
        # First-sibling ids stay socket-major: socket s's cores start
        # after every preceding socket's cores, so the homogeneous case
        # reproduces the historical first_id = s * cores_per_socket + c.
        core_offsets = []
        offset = 0
        for count in core_counts:
            core_offsets.append(offset)
            offset += count
        sockets = []
        for socket_id in range(socket_count):
            cores = []
            for core_id in range(core_counts[socket_id]):
                first_id = core_offsets[socket_id] + core_id
                thread_list = [
                    HardwareThread(
                        global_id=first_id + sibling * total_cores,
                        socket_id=socket_id,
                        core_id=core_id,
                        sibling_index=sibling,
                    )
                    for sibling in range(threads_per_core)
                ]
                cores.append(
                    PhysicalCore(
                        socket_id=socket_id,
                        core_id=core_id,
                        threads=tuple(thread_list),
                    )
                )
            sockets.append(Socket(socket_id=socket_id, cores=tuple(cores)))

        topo = Topology(sockets=tuple(sockets))
        for sock in topo.sockets:
            for core in sock.cores:
                for thread in core.threads:
                    topo._threads_by_id[thread.global_id] = thread
        return topo

    # -- sizes ---------------------------------------------------------------

    @property
    def socket_count(self) -> int:
        """Number of sockets."""
        return len(self.sockets)

    @property
    def cores_per_socket(self) -> int:
        """Physical cores on socket 0 (per-socket counts may differ on
        heterogeneous cluster topologies — use :meth:`socket` for those)."""
        return self.sockets[0].core_count

    @property
    def threads_per_core(self) -> int:
        """Hardware threads per physical core (uniform machine-wide)."""
        return len(self.sockets[0].cores[0].threads)

    @property
    def total_threads(self) -> int:
        """Total hardware threads in the machine."""
        return sum(
            socket.core_count * self.threads_per_core
            for socket in self.sockets
        )

    # -- lookups -------------------------------------------------------------

    def thread(self, global_id: int) -> HardwareThread:
        """Look up a hardware thread by global id.

        Raises:
            TopologyError: if the id does not exist.
        """
        try:
            return self._threads_by_id[global_id]
        except KeyError:
            raise TopologyError(f"unknown hardware thread id {global_id}") from None

    def socket(self, socket_id: int) -> Socket:
        """Look up a socket by id.

        Raises:
            TopologyError: if the id does not exist.
        """
        if not 0 <= socket_id < self.socket_count:
            raise TopologyError(f"unknown socket id {socket_id}")
        return self.sockets[socket_id]

    def core_of(self, thread_id: int) -> PhysicalCore:
        """Return the physical core owning ``thread_id``."""
        t = self.thread(thread_id)
        return self.sockets[t.socket_id].cores[t.core_id]

    def socket_of(self, thread_id: int) -> int:
        """Return the socket id owning ``thread_id``."""
        return self.thread(thread_id).socket_id

    def sibling_of(self, thread_id: int) -> int | None:
        """Return the HyperThread sibling's global id, or None without SMT."""
        core = self.core_of(thread_id)
        ids = core.thread_ids()
        if len(ids) < 2:
            return None
        return ids[1] if ids[0] == thread_id else ids[0]

    def iter_threads(self) -> Iterator[HardwareThread]:
        """Iterate over all hardware threads in global-id order."""
        for global_id in sorted(self._threads_by_id):
            yield self._threads_by_id[global_id]

    def threads_on_socket(self, socket_id: int) -> tuple[int, ...]:
        """Global thread ids belonging to ``socket_id``."""
        return self.socket(socket_id).thread_ids()

    def group_by_core(
        self, thread_ids: Sequence[int]
    ) -> dict[tuple[int, int], list[int]]:
        """Group thread ids by their (socket_id, core_id) physical core.

        Used by the power/performance models, which charge per-core costs
        once regardless of how many siblings of a core are active.
        """
        groups: dict[tuple[int, int], list[int]] = {}
        for tid in thread_ids:
            t = self.thread(tid)
            groups.setdefault((t.socket_id, t.core_id), []).append(tid)
        return groups
