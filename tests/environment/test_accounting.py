"""Tests for carbon/cost accounting: closed forms and fold identity."""

import pytest

from repro.environment import (
    ConstantSignal,
    Environment,
    EnvironmentAccounting,
    JOULES_PER_KWH,
    StepSignal,
)


def _flat_env(carbon=360.0, price=0.36, pue=1.25):
    return Environment(
        name="test",
        carbon=ConstantSignal(carbon),
        price=ConstantSignal(price),
        pue=pue,
    )


class TestClosedForm:
    def test_constant_signals(self):
        """One hour at 1 kW wall with PUE 1.25: 1.25 kWh at the wall,
        so gCO2 = 1.25 * carbon and cost = 1.25 * price."""
        acc = EnvironmentAccounting(_flat_env())
        acc.account_span(0.0, 3600.0, 1, psu_power_w=1000.0)
        assert acc.wall_energy_j == pytest.approx(1.25 * JOULES_PER_KWH)
        assert acc.gco2_total_g == pytest.approx(1.25 * 360.0)
        assert acc.cost_usd == pytest.approx(1.25 * 0.36)

    def test_pue_multiplies_wall_energy(self):
        lean = EnvironmentAccounting(_flat_env(pue=1.0))
        fat = EnvironmentAccounting(_flat_env(pue=2.0))
        for acc in (lean, fat):
            acc.account_tick(0.0, 1.0, psu_power_w=100.0)
        assert fat.wall_energy_j == pytest.approx(2.0 * lean.wall_energy_j)
        assert fat.gco2_total_g == pytest.approx(2.0 * lean.gco2_total_g)

    def test_step_signal_charged_at_tick_starts(self):
        """Carbon doubles at t=1; the tick starting exactly there is
        charged at the new level, the tick before it at the old one."""
        env = Environment(
            name="step",
            carbon=StepSignal([(0.0, 100.0), (1.0, 200.0)]),
            price=ConstantSignal(0.0),
            pue=1.0,
        )
        acc = EnvironmentAccounting(env)
        acc.account_tick(0.0, 1.0, psu_power_w=JOULES_PER_KWH)  # 1 kWh/s
        acc.account_tick(1.0, 1.0, psu_power_w=JOULES_PER_KWH)
        assert acc.gco2_total_g == pytest.approx(100.0 + 200.0)


class TestFoldIdentity:
    """A macro span must accumulate the exact float sequence of the
    per-tick loop — bitwise, no tolerance."""

    def _env(self):
        return Environment(
            name="fold",
            carbon=StepSignal(
                [(0.0, 431.7), (0.05, 612.3), (0.11, 287.9)]
            ),
            price=StepSignal([(0.0, 0.061), (0.08, 0.297)]),
            pue=1.17,
        )

    def test_span_equals_tick_sequence(self):
        dt = 0.002
        n = 100
        power = 173.25
        ticks = EnvironmentAccounting(self._env())
        span = EnvironmentAccounting(self._env())
        now = 0.0
        for _ in range(n):
            ticks.account_tick(now, dt, power)
            now += dt  # the same += fold the machine clock uses
        span.account_span(0.0, dt, n, power)
        assert span.wall_energy_j == ticks.wall_energy_j
        assert span.gco2_total_g == ticks.gco2_total_g
        assert span.cost_usd == ticks.cost_usd

    def test_split_spans_equal_one_span(self):
        dt = 0.002
        power = 88.5
        whole = EnvironmentAccounting(self._env())
        parts = EnvironmentAccounting(self._env())
        whole.account_span(0.0, dt, 60, power)
        parts.account_span(0.0, dt, 25, power)
        parts.account_span(25 * dt, dt, 35, power)
        assert parts.wall_energy_j == whole.wall_energy_j
        assert parts.gco2_total_g == whole.gco2_total_g
        assert parts.cost_usd == whole.cost_usd

    def test_single_tick_span_is_account_tick(self):
        a = EnvironmentAccounting(self._env())
        b = EnvironmentAccounting(self._env())
        a.account_tick(0.123, 0.002, 55.0)
        b.account_span(0.123, 0.002, 1, 55.0)
        assert a.wall_energy_j == b.wall_energy_j
        assert a.gco2_total_g == b.gco2_total_g
        assert a.cost_usd == b.cost_usd
