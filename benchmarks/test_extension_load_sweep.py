"""Extension — savings-vs-load sweep: the energy-proportionality story.

Condenses the §6.1 discussion into one curve: at each constant load
level the ECL's relative saving over the baseline shrinks as the static
idle advantage is amortized (the paper: proportionality is near-perfect
above 50 %, dominated by static power below).
"""

from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.sim.metrics import energy_saving_fraction
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import heading

LOAD_LEVELS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_sweep():
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    rows = []
    for level in LOAD_LEVELS:
        profile = constant_profile(level, duration_s=15.0)
        ecl = run_experiment(
            RunConfiguration(workload=workload, profile=profile)
        )
        base = run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="baseline")
        )
        rows.append(
            (
                level,
                energy_saving_fraction(base, ecl),
                ecl.average_power_w(),
                base.average_power_w(),
                ecl.violation_fraction(),
            )
        )
    return rows


def test_extension_load_sweep(run_once):
    rows = run_once(run_sweep)

    heading("Extension — ECL savings vs constant load level (KV scans)")
    print(f"{'load':>6} {'saving':>8} {'ecl W':>8} {'base W':>8} {'viol':>7}")
    for level, saving, ecl_w, base_w, violations in rows:
        print(
            f"{level:6.0%} {saving:8.1%} {ecl_w:8.1f} {base_w:8.1f} "
            f"{violations:7.1%}"
        )

    savings = [saving for _, saving, _, _, _ in rows]
    # Savings shrink monotonically (small wiggles allowed) as load rises:
    # the idle-state advantage is amortized by real work.
    assert savings[0] > savings[-1] + 0.15
    for earlier, later in zip(savings, savings[1:]):
        assert later < earlier + 0.05

    # Meaningful savings across the whole range.
    assert min(savings) > 0.10
    assert max(savings) > 0.40

    # ECL power grows with load (energy proportional behaviour).
    powers = [ecl_w for _, _, ecl_w, _, _ in rows]
    assert powers == sorted(powers)

    # The latency limit holds at every level.
    for _, _, _, _, violations in rows:
        assert violations < 0.05
