"""The uncontrolled baseline policy (paper §6 experiments).

"The baseline uses all available hardware threads with CPU and OS
frequency control resembling ... a race-to-idle strategy."  Concretely:

* every hardware thread stays active — the data-oriented runtime's
  polling-based messaging never lets cores enter a sleep state on its
  own (§3, "Polling-Based Messaging");
* all core clocks sit at the maximum sustained frequency (the OS
  performance/ondemand governor under load);
* the uncore clock stays in automatic UFS mode, which the paper showed
  picks the maximum whenever any core is active (Fig. 8);
* the CPU's own energy management (EPB balanced, EET) is all that is
  left to save power.

An optional OS-idle grace model parks the cores after the machine has
been completely out of work for a while (tickless idle), which is what
lets the baseline's power fall at zero load in Fig. 13(a) — without ever
reaching the ECL's synchronized deep sleep during *partial* load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dbms.engine import DatabaseEngine
from repro.hardware.frequency import EnergyPerformanceBias
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.sim.runner import RunConfiguration


class BaselinePolicy:
    """Drives the machine the way an ECL-less deployment would."""

    def __init__(self, engine: DatabaseEngine, idle_grace_s: float = 0.25):
        self.engine = engine
        self.machine = engine.machine
        self.idle_grace_s = idle_grace_s
        self._idle_since: float | None = None
        self._parked = False
        self._initialized = False

    @classmethod
    def build(
        cls, engine: DatabaseEngine, config: "RunConfiguration"
    ) -> "BaselinePolicy":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        return cls(engine)

    def _apply_active_state(self) -> None:
        machine = self.machine
        all_threads = {t.global_id for t in machine.topology.iter_threads()}
        machine.cstates.set_active_threads(all_threads)
        for sock in machine.topology.sockets:
            nominal = machine.params_for(sock.socket_id).core_nominal_ghz
            machine.frequency.set_socket_core_frequencies(
                sock.socket_id,
                {core.core_id: nominal for core in sock.cores},
                machine.time_s,
            )
        machine.set_epb_all(EnergyPerformanceBias.BALANCED)
        for sock in machine.topology.sockets:
            machine.frequency.set_uncore_auto(sock.socket_id)
        self._parked = False

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Apply the baseline state; park only after a long idle spell."""
        if not self._initialized:
            self._apply_active_state()
            self._initialized = True

        has_work = (
            self.engine.pending_messages() > 0
            or self.engine.tracker.in_flight > 0
        )
        if has_work:
            self._idle_since = None
            if self._parked:
                self._apply_active_state()
            return
        if self._idle_since is None:
            self._idle_since = now_s
            return
        if not self._parked and now_s - self._idle_since >= self.idle_grace_s:
            # Tickless OS idle: cores C6; automatic UFS drops the uncore.
            self.machine.cstates.set_active_threads(set())
            self._parked = True

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        Within a span no messages move and no queries complete, so the
        ``has_work`` predicate is frozen; the only latent event is the
        tickless-idle park at the end of the grace period.
        """
        if not self._initialized:
            return None  # the next tick applies the active state
        has_work = (
            self.engine.pending_messages() > 0
            or self.engine.tracker.in_flight > 0
        )
        if has_work:
            if self._parked:
                return None  # the next tick unparks
            return float("inf"), {}
        if self._parked:
            return float("inf"), {}
        if self._idle_since is None:
            return None  # the next tick starts the grace timer
        parks_at = self._idle_since + self.idle_grace_s
        if now_s >= parks_at:
            return None  # the next tick parks
        return parks_at, {}

    def annotate_sample(self) -> SampleAnnotations:
        """The baseline has no internal state worth plotting."""
        return SampleAnnotations()
