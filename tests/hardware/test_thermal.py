"""Tests for the thermal turbo budget (paper: ~1 s 500 W transient)."""

import pytest

from repro.hardware.firestarter import apply_full_load, apply_idle
from repro.hardware.machine import Machine


class TestThermalThrottling:
    def test_turbo_survives_within_budget(self, machine: Machine):
        apply_full_load(machine, turbo=True)
        machine.step(0.5)
        assert not machine.thermally_throttled(0)
        assert machine.thermal_credit_s(0) < machine.params.thermal_budget_s

    def test_turbo_throttles_after_budget(self, machine: Machine):
        apply_full_load(machine, turbo=True)
        hot = machine.step(1.0).psu_power_w
        machine.step(0.5)
        assert machine.thermally_throttled(0)
        throttled = machine.step(0.5).psu_power_w
        assert throttled < hot - 50.0  # back to roughly the sustained level

    def test_throttle_caps_at_nominal_clock(self, machine: Machine):
        apply_full_load(machine, turbo=True)
        before = machine.step(0.5).sockets[0].performance.capacity_ips
        machine.step(1.0)  # exhaust the budget
        after = machine.step(0.5).sockets[0].performance.capacity_ips
        ratio = machine.params.core_nominal_ghz / machine.params.core_turbo_ghz
        assert after == pytest.approx(before * ratio, rel=0.02)

    def test_budget_recovers_below_tdp(self, machine: Machine):
        apply_full_load(machine, turbo=True)
        machine.step(1.5)  # throttled now
        assert machine.thermally_throttled(0)
        apply_idle(machine)
        machine.step(2.0)
        assert not machine.thermally_throttled(0)
        assert machine.thermal_credit_s(0) > 0.5

    def test_sustained_clock_never_throttles_performance(self, machine: Machine):
        """Non-turbo full load may hover at TDP but loses no capacity."""
        apply_full_load(machine, turbo=False)
        first = machine.step(1.0).sockets[0].performance.capacity_ips
        machine.step(3.0)
        later = machine.step(1.0).sockets[0].performance.capacity_ips
        assert later == pytest.approx(first, rel=1e-6)

    def test_small_turbo_configs_stay_cool(self, machine: Machine):
        """Fig. 10(b)'s 2-thread turbo optimum runs far below TDP."""
        from repro.hardware.perfmodel import SocketLoad
        from repro.workloads.micro import ATOMIC_CONTENTION

        machine.apply_socket_threads(0, {0, 24})
        machine.apply_socket_threads(1, set())
        machine.frequency.set_core_frequency(0, 0, 3.1, 0.0)
        machine.set_epb_all(
            __import__(
                "repro.hardware.frequency", fromlist=["EnergyPerformanceBias"]
            ).EnergyPerformanceBias.PERFORMANCE
        )
        machine.frequency.set_uncore_frequency(0, 1.2)
        machine.set_socket_load(0, SocketLoad(ATOMIC_CONTENTION, None))
        machine.step(5.0)
        assert not machine.thermally_throttled(0)
        assert machine.thermal_credit_s(0) == pytest.approx(
            machine.params.thermal_budget_s
        )
