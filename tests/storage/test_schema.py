"""Tests for schemas and data types."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import ColumnSpec, DataType, Schema


class TestDataType:
    def test_widths(self):
        assert DataType.INT32.width_bytes == 4
        assert DataType.INT64.width_bytes == 8
        assert DataType.FLOAT64.width_bytes == 8
        assert DataType.STRING.width_bytes == 16

    def test_numeric_flags(self):
        assert DataType.INT64.is_numeric
        assert not DataType.STRING.is_numeric

    def test_int32_range(self):
        assert DataType.INT32.validate(2**31 - 1) == 2**31 - 1
        with pytest.raises(SchemaError):
            DataType.INT32.validate(2**31)

    def test_int64_range(self):
        with pytest.raises(SchemaError):
            DataType.INT64.validate(2**63)

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            DataType.INT32.validate(True)

    def test_float_accepts_int(self):
        assert DataType.FLOAT64.validate(3) == 3.0

    def test_string_type_checked(self):
        with pytest.raises(SchemaError):
            DataType.STRING.validate(42)


class TestColumnSpec:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("1bad", DataType.INT32)
        with pytest.raises(SchemaError):
            ColumnSpec("", DataType.INT32)


class TestSchema:
    @pytest.fixture
    def schema(self):
        return Schema.of(key=DataType.INT64, value=DataType.INT32, tag=DataType.STRING)

    def test_positions(self, schema):
        assert schema.position("key") == 0
        assert schema.position("tag") == 2

    def test_unknown_column(self, schema):
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_contains(self, schema):
        assert "key" in schema
        assert "missing" not in schema

    def test_validate_row_ok(self, schema):
        row = schema.validate_row((1, 2, "x"))
        assert row == (1, 2, "x")

    def test_validate_row_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row((1, 2))

    def test_validate_row_types(self, schema):
        with pytest.raises(SchemaError) as excinfo:
            schema.validate_row((1, "no", "x"))
        assert "value" in str(excinfo.value)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnSpec("a", DataType.INT32), ColumnSpec("a", DataType.INT64)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_row_width(self, schema):
        assert schema.row_width_bytes() == 8 + 4 + 16

    def test_project(self, schema):
        projected = schema.project(["tag", "key"])
        assert projected.names == ("tag", "key")
