"""Tests for the ondemand-governor comparison policy."""

import pytest

from repro.errors import ControlError
from repro.dbms.engine import DatabaseEngine
from repro.hardware.machine import Machine
from repro.loadprofiles import constant_profile, step_profile
from repro.sim import OndemandGovernorPolicy, RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant


@pytest.fixture
def governor_setup():
    machine = Machine(seed=17)
    engine = DatabaseEngine(machine)
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    engine.set_workload_characteristics(workload.characteristics)
    return machine, engine, OndemandGovernorPolicy(engine)


class TestGovernorMechanics:
    def test_validation(self, governor_setup):
        _, engine, _ = governor_setup
        with pytest.raises(ControlError):
            OndemandGovernorPolicy(engine, period_s=0.0)
        with pytest.raises(ControlError):
            OndemandGovernorPolicy(engine, up_threshold=0.3, down_threshold=0.5)

    def test_starts_at_max_sustained(self, governor_setup):
        machine, engine, governor = governor_setup
        governor.on_tick(0.0, 0.002)
        assert governor.socket_frequency_ghz(0) == pytest.approx(
            machine.params.core_nominal_ghz
        )
        assert len(machine.cstates.active_threads) == machine.params.total_threads

    def test_steps_down_when_idle(self, governor_setup):
        machine, engine, governor = governor_setup
        for _ in range(1500):  # 3 s of idle ticks
            governor.on_tick(machine.time_s, 0.002)
            engine.tick(0.002)
        assert governor.socket_frequency_ghz(0) == pytest.approx(
            machine.params.core_min_ghz
        )

    def test_never_requests_turbo(self, governor_setup):
        machine, _, governor = governor_setup
        assert max(governor._steps) <= machine.params.core_nominal_ghz


class TestGovernorEndToEnd:
    def test_sits_between_baseline_and_ecl(self):
        """The paper's argument: DVFS-only control leaves savings behind."""
        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
        profile = constant_profile(0.3, duration_s=8.0)
        energy = {}
        for policy in ("baseline", "ondemand", "ecl"):
            energy[policy] = run_experiment(
                RunConfiguration(workload=workload, profile=profile, policy=policy)
            ).total_energy_j
        assert energy["ecl"] < energy["ondemand"] < energy["baseline"]

    def test_reacts_to_load_steps(self):
        workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
        profile = step_profile([(4.0, 0.05), (4.0, 0.9)])
        result = run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy="ondemand")
        )
        low = [s.rapl_power_w for s in result.samples if 2.0 < s.time_s < 3.8]
        high = [s.rapl_power_w for s in result.samples if 6.0 < s.time_s < 7.8]
        assert sum(high) / len(high) > sum(low) / len(low) + 15
        assert result.queries_completed >= 0.95 * result.queries_submitted
