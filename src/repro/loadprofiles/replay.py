"""Trace replay: drive the load generator from recorded arrival times.

A :class:`TraceReplayProfile` wraps a concrete list of arrival
timestamps — exported telemetry (``repro run --trace``), a production
log, a CSV arrival curve — and replays it exactly: the load generator
asks it for per-tick *counts* (:meth:`counts_array`) instead of
integrating a rate curve, so a replayed run reproduces the recorded
per-tick arrival stream bin for bin.

Two layers of fidelity:

* **deterministic mode** (the default): :meth:`counts_array` histograms
  the recorded timestamps onto the tick grid — exact integer counts,
  no carry, no RNG;
* **display / Poisson mode**: :meth:`fraction` exposes a binned rate
  curve (a :class:`~repro.environment.signal.StepSignal` normalized to
  ``reference_qps``) so sampling, reports, and ``poisson=True`` runs
  still see a sensible load shape.

Telemetry arrival timestamps are generated strictly inside their tick
(``t + dt*(i+0.5)/count``), so the histogram recovery is float-safe.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

import numpy as np

from repro.environment.signal import StepSignal
from repro.errors import SimulationError
from repro.loadprofiles.base import LoadProfile

#: Rate-curve bins for the display fraction (per run, not per second).
DISPLAY_BINS = 200


class TraceReplayProfile(LoadProfile):
    """Replays a recorded arrival stream exactly.

    Args:
        arrival_times_s: arrival timestamps in seconds (any order).
        name: profile name for reports.
        duration_s: run length; defaults to the last arrival time (an
            arrival at exactly the end then needs an explicit longer
            duration to be generated).
        reference_qps: rate mapped to ``fraction == 1.0``; defaults to
            the peak binned rate, so the display curve peaks at 1.0.
    """

    def __init__(
        self,
        arrival_times_s,
        name: str = "replay",
        duration_s: float | None = None,
        reference_qps: float | None = None,
    ):
        times = np.sort(np.asarray(arrival_times_s, dtype=np.float64))
        if times.size == 0:
            raise SimulationError("replay trace contains no arrivals")
        if times[0] < 0:
            raise SimulationError(
                f"arrival times must be >= 0, got {times[0]}"
            )
        if duration_s is None:
            duration_s = float(times[-1])
        if duration_s <= 0:
            raise SimulationError(f"duration must be > 0, got {duration_s}")
        if times[-1] > duration_s:
            raise SimulationError(
                f"arrival at {float(times[-1])} s exceeds the "
                f"{duration_s} s duration"
            )
        self._name = name
        self._times = times
        self._duration_s = float(duration_s)
        # Binned rate curve for display/Poisson: counts per bin / bin
        # width, normalized to the reference rate.
        bins = min(DISPLAY_BINS, max(1, int(times.size)))
        bin_s = self._duration_s / bins
        edges = np.arange(bins + 1, dtype=np.float64) * bin_s
        counts = np.diff(np.searchsorted(times, edges, side="left"))
        # The final edge is closed so an arrival at exactly duration_s
        # lands in the last bin rather than vanishing from the display.
        counts[-1] += int(times.size - np.searchsorted(times, edges[-1]))
        rates = counts / bin_s
        if reference_qps is None:
            reference_qps = float(rates.max()) or 1.0
        if reference_qps <= 0:
            raise SimulationError(
                f"reference_qps must be > 0, got {reference_qps}"
            )
        self.reference_qps = float(reference_qps)
        self._signal = StepSignal(
            list(zip(edges[:-1], rates / self.reference_qps)),
            name=f"{name}-rate",
        )

    @property
    def name(self) -> str:
        return self._name

    @property
    def duration_s(self) -> float:
        return self._duration_s

    @property
    def arrival_times_s(self) -> np.ndarray:
        """The sorted recorded arrival timestamps (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def arrival_count(self) -> int:
        return int(self._times.size)

    # -- exact replay (the load generator's fast path) ---------------------

    def counts_array(
        self, t0_s: float, dt_s: float, start_tick: int, n_ticks: int
    ) -> np.ndarray:
        """Arrival counts for ticks ``start_tick .. start_tick+n_ticks-1``.

        Tick ``k`` covers the half-open bin
        ``[t0_s + k*dt_s, t0_s + (k+1)*dt_s)`` — the exact per-tick
        arrival window — so histogramming the recorded timestamps
        reproduces the original per-tick stream.
        """
        if dt_s <= 0:
            raise SimulationError(f"tick must be > 0, got {dt_s}")
        edges = t0_s + (
            np.arange(start_tick, start_tick + n_ticks + 1, dtype=np.float64)
            * dt_s
        )
        return np.diff(np.searchsorted(self._times, edges, side="left")).astype(
            np.int64
        )

    # -- display / Poisson rate curve --------------------------------------

    def fraction(self, t_s: float) -> float:
        if t_s < 0.0 or t_s > self._duration_s:
            return 0.0
        return self._signal.value(t_s)

    def fraction_array(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=np.float64)
        inside = (times_s >= 0.0) & (times_s <= self._duration_s)
        return np.where(inside, self._signal.values(times_s), 0.0)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        path: "str | os.PathLike[str]",
        name: str | None = None,
        duration_s: float | None = None,
        reference_qps: float | None = None,
    ) -> "TraceReplayProfile":
        """Rebuild the arrival stream of a ``repro.telemetry`` trace.

        Reads the ``arrival`` events of a JSONL trace written by
        :meth:`~repro.telemetry.trace.TraceRecorder.to_jsonl`; the
        ``run_start`` event (when present) supplies the default name and
        duration.

        Raises:
            SimulationError: unreadable file or no arrival events (e.g.
                a trace recorded with ``record_arrivals=False``, or one
                whose ring buffer evicted them).
        """
        target = Path(path)
        arrivals: list[float] = []
        source_profile: str | None = None
        for record in _jsonl_records(target):
            kind = record.get("event")
            if kind == "arrival":
                arrivals.append(float(record["t"]))
            elif kind == "run_start":
                source_profile = record.get("profile")
                if duration_s is None and record.get("duration_s") is not None:
                    duration_s = float(record["duration_s"])
            elif kind is None:
                # Not a telemetry trace; fall through to the generic
                # (time, count) JSONL schema.
                t = record.get("time_s", record.get("t"))
                if t is None:
                    raise SimulationError(
                        f"{target}: JSONL row needs 'time_s' (or 't')"
                    )
                arrivals.extend([float(t)] * int(record.get("count", 1)))
        if not arrivals:
            raise SimulationError(
                f"{target}: no arrival events (trace recorded with "
                "record_arrivals=False, or arrivals evicted by the ring "
                "buffer?)"
            )
        if name is None:
            suffix = source_profile or target.stem
            name = f"replay:{suffix}"
        return cls(
            arrivals,
            name=name,
            duration_s=duration_s,
            reference_qps=reference_qps,
        )

    # JSONL arrival curves share the trace parser (the generic schema
    # branch above).
    from_jsonl = from_trace

    @classmethod
    def from_csv(
        cls,
        path: "str | os.PathLike[str]",
        name: str | None = None,
        duration_s: float | None = None,
        reference_qps: float | None = None,
    ) -> "TraceReplayProfile":
        """Load an arrival curve from ``time_s[,count]`` CSV rows.

        Each row contributes ``count`` arrivals (default 1) at its
        timestamp; an optional header row is skipped.
        """
        target = Path(path)
        if not target.is_file():
            raise SimulationError(f"no replay trace at {target}")
        arrivals: list[float] = []
        with open(target, "r", encoding="utf-8", newline="") as fh:
            for lineno, row in enumerate(csv.reader(fh), start=1):
                if not row or not any(cell.strip() for cell in row):
                    continue
                try:
                    t = float(row[0])
                    count = int(row[1]) if len(row) > 1 and row[1].strip() else 1
                except ValueError:
                    if lineno == 1:
                        continue  # header row ("time_s,count")
                    raise SimulationError(
                        f"{target}:{lineno}: expected 'time_s[,count]' row, "
                        f"got {row!r}"
                    ) from None
                if count < 0:
                    raise SimulationError(
                        f"{target}:{lineno}: count must be >= 0, got {count}"
                    )
                arrivals.extend([t] * count)
        if not arrivals:
            raise SimulationError(f"{target}: no arrivals")
        return cls(
            arrivals,
            name=name or f"replay:{target.stem}",
            duration_s=duration_s,
            reference_qps=reference_qps,
        )


def _jsonl_records(path: Path):
    if not path.is_file():
        raise SimulationError(f"no replay trace at {path}")
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise SimulationError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            yield record


def load_replay_trace(
    path: "str | os.PathLike[str]",
    name: str | None = None,
    duration_s: float | None = None,
) -> TraceReplayProfile:
    """Load a replay profile from a file, picking the format by suffix.

    ``.jsonl`` / ``.ndjson`` parse as telemetry traces or generic JSONL
    arrival rows; everything else parses as ``time_s[,count]`` CSV.
    """
    target = Path(path)
    if target.suffix.lower() in (".jsonl", ".ndjson"):
        return TraceReplayProfile.from_trace(
            target, name=name, duration_s=duration_s
        )
    return TraceReplayProfile.from_csv(
        target, name=name, duration_s=duration_s
    )
