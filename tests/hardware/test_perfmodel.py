"""Tests for the performance model: throughput, bandwidth, contention."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.hardware.perfmodel import (
    ActiveCore,
    PerformanceModel,
    SocketLoad,
    WorkloadCharacteristics,
    blend_characteristics,
)
from repro.hardware.presets import haswell_ep_two_socket
from repro.hardware.topology import Topology
from repro.workloads.micro import (
    ATOMIC_CONTENTION,
    COMPUTE_BOUND,
    HASHTABLE_INSERT,
    MEMORY_BOUND,
)


@pytest.fixture
def model():
    params = haswell_ep_two_socket()
    topo = Topology.build(2, 12, 2)
    return PerformanceModel(topo, params)


def cores(n, freq, siblings=1):
    return [
        ActiveCore(socket_id=0, core_id=i, frequency_ghz=freq, sibling_count=siblings)
        for i in range(n)
    ]


class TestCharacteristicsValidation:
    def test_rejects_bad_cpi(self):
        with pytest.raises(ValueError):
            WorkloadCharacteristics(name="x", base_cpi=0.0)

    def test_rejects_bad_ht(self):
        with pytest.raises(ConfigurationError):
            WorkloadCharacteristics(name="x", base_cpi=1.0, ht_speedup=2.5)

    def test_blend_weights(self):
        a = WorkloadCharacteristics(name="a", base_cpi=1.0)
        b = WorkloadCharacteristics(name="b", base_cpi=2.0)
        mixed = a.blended_with(b, 0.5)
        assert mixed.base_cpi == pytest.approx(1.5)

    def test_blend_identity_edges(self):
        a = WorkloadCharacteristics(name="a", base_cpi=1.0)
        b = WorkloadCharacteristics(name="b", base_cpi=2.0)
        assert a.blended_with(b, 0.0) is a
        assert a.blended_with(b, 1.0) is b

    def test_blend_many(self):
        a = WorkloadCharacteristics(name="a", base_cpi=1.0)
        b = WorkloadCharacteristics(name="b", base_cpi=3.0)
        mixed = blend_characteristics([(a, 1.0), (b, 1.0)])
        assert mixed.base_cpi == pytest.approx(2.0)

    def test_blend_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            blend_characteristics([])

    def test_scaled_intensity(self):
        mem = MEMORY_BOUND.scaled_intensity(0.5)
        assert mem.bytes_per_instr == pytest.approx(
            MEMORY_BOUND.bytes_per_instr * 0.5
        )


class TestBandwidth:
    def test_bandwidth_scales_with_uncore(self, model):
        """Fig. 6: memory bandwidth is governed by the uncore clock."""
        low = model.bandwidth_gbs(1.2)
        high = model.bandwidth_gbs(3.0)
        assert high == pytest.approx(56.0)
        assert low == pytest.approx(56.0 * 0.42)
        assert low < model.bandwidth_gbs(2.1) < high

    def test_min_core_freq_reaches_full_bandwidth(self, model):
        """Fig. 6: all cores at 1.2 GHz saturate bandwidth at max uncore."""
        perf = model.socket_capacity(cores(12, 1.2, 1), 3.0, MEMORY_BOUND)
        assert perf.bandwidth_limited
        assert perf.traffic_gbs == pytest.approx(
            model.bandwidth_gbs(3.0), rel=0.02
        )

    def test_ht_oversubscription_loses_bandwidth(self, model):
        """More streams than cores thrash the memory controllers."""
        single = model.socket_capacity(cores(12, 1.2, 1), 3.0, MEMORY_BOUND)
        doubled = model.socket_capacity(cores(12, 1.2, 2), 3.0, MEMORY_BOUND)
        assert doubled.traffic_gbs < single.traffic_gbs

    def test_memory_latency_stretches_at_low_uncore(self, model):
        assert model.memory_latency_ns(1.2) > model.memory_latency_ns(3.0)


class TestComputeThroughput:
    def test_scales_linearly_with_frequency(self, model):
        slow = model.socket_capacity(cores(4, 1.2), 3.0, COMPUTE_BOUND)
        fast = model.socket_capacity(cores(4, 2.4), 3.0, COMPUTE_BOUND)
        assert fast.capacity_ips == pytest.approx(
            2.0 * slow.capacity_ips, rel=0.01
        )

    def test_scales_with_core_count(self, model):
        one = model.socket_capacity(cores(1, 2.6), 3.0, COMPUTE_BOUND)
        six = model.socket_capacity(cores(6, 2.6), 3.0, COMPUTE_BOUND)
        assert six.capacity_ips == pytest.approx(6.0 * one.capacity_ips, rel=0.01)

    def test_ht_speedup_applied(self, model):
        single = model.socket_capacity(cores(1, 2.6, 1), 3.0, COMPUTE_BOUND)
        smt = model.socket_capacity(cores(1, 2.6, 2), 3.0, COMPUTE_BOUND)
        assert smt.capacity_ips == pytest.approx(
            single.capacity_ips * COMPUTE_BOUND.ht_speedup, rel=0.01
        )

    def test_no_cores_no_throughput(self, model):
        perf = model.resolve([], 3.0, SocketLoad(COMPUTE_BOUND))
        assert perf.capacity_ips == 0.0
        assert perf.executed_ips == 0.0

    def test_demand_caps_execution(self, model):
        load = SocketLoad(COMPUTE_BOUND, demand_instructions_per_s=1e9)
        perf = model.resolve(cores(12, 2.6, 2), 3.0, load)
        assert perf.executed_ips == pytest.approx(1e9)
        assert perf.utilization < 0.1

    def test_latency_bound_ipc_saturates_in_core_clock(self, model):
        """Doubling the clock on a latency-bound workload gains < 2×."""
        chars = WorkloadCharacteristics(
            name="pointer-chase", base_cpi=0.8, miss_rate=0.004
        )
        slow = model.socket_capacity(cores(4, 1.2), 3.0, chars)
        fast = model.socket_capacity(cores(4, 2.4), 3.0, chars)
        assert fast.capacity_ips < 1.8 * slow.capacity_ips


class TestBandwidthContention:
    def test_oversubscription_degrades_throughput(self, model):
        """§6.1: piling on threads past the bandwidth cap loses capacity."""
        lean = model.socket_capacity(cores(9, 1.9, 2), 3.0, MEMORY_BOUND)
        all_on = model.socket_capacity(cores(12, 3.1, 2), 3.0, MEMORY_BOUND)
        assert all_on.bandwidth_limited
        assert all_on.capacity_ips < lean.capacity_ips

    def test_degradation_has_floor(self, model):
        params = haswell_ep_two_socket()
        perf = model.socket_capacity(cores(12, 3.1, 2), 1.2, MEMORY_BOUND)
        floor_ips = (
            model.bandwidth_gbs(1.2)
            * 1e9
            * params.bandwidth_contention_floor
            / MEMORY_BOUND.bytes_per_instr
        )
        assert perf.capacity_ips >= floor_ips - 1.0


class TestAtomicContention:
    def test_single_core_handoff_is_uncore_independent(self, model):
        low = model.atomic_handoff_ns(1, 1.2, ATOMIC_CONTENTION, core_ghz=3.1)
        high = model.atomic_handoff_ns(1, 3.0, ATOMIC_CONTENTION, core_ghz=3.1)
        assert low == pytest.approx(high)

    def test_single_core_handoff_shrinks_with_core_clock(self, model):
        """Fig. 10(b): turbo speeds up the core-local hand-off."""
        slow = model.atomic_handoff_ns(1, 1.2, ATOMIC_CONTENTION, core_ghz=1.2)
        fast = model.atomic_handoff_ns(1, 1.2, ATOMIC_CONTENTION, core_ghz=3.1)
        assert fast < slow

    def test_cross_core_handoff_grows_with_contenders(self, model):
        two = model.atomic_handoff_ns(2, 3.0, ATOMIC_CONTENTION)
        twelve = model.atomic_handoff_ns(12, 3.0, ATOMIC_CONTENTION)
        assert twelve > two

    def test_cross_core_handoff_slows_at_low_uncore(self, model):
        fast = model.atomic_handoff_ns(4, 3.0, ATOMIC_CONTENTION)
        slow = model.atomic_handoff_ns(4, 1.2, ATOMIC_CONTENTION)
        assert slow > fast

    def test_two_siblings_beat_all_cores(self, model):
        """Fig. 10(b): 2 HT of one core at turbo beat the full socket ~3×."""
        pair = model.socket_capacity(cores(1, 3.1, 2), 1.2, ATOMIC_CONTENTION)
        everyone = model.socket_capacity(cores(12, 2.6, 2), 3.0, ATOMIC_CONTENTION)
        advantage = pair.capacity_ips / everyone.capacity_ips
        assert 2.0 < advantage < 6.0
        assert pair.contention_limited

    def test_uncontended_workload_has_no_cap(self, model):
        cap = model.contention_cap_ips(12, 3.0, COMPUTE_BOUND)
        assert cap == float("inf")

    def test_hashtable_contention_milder(self, model):
        """Fig. 10(c): the shared hash table shows the effect at small scale."""
        pair = model.socket_capacity(cores(1, 3.1, 2), 1.2, HASHTABLE_INSERT)
        everyone = model.socket_capacity(
            cores(12, 2.6, 2), 3.0, HASHTABLE_INSERT
        )
        advantage = pair.capacity_ips / everyone.capacity_ips
        assert 1.0 < advantage < 1.6


class TestActivity:
    def test_activity_in_unit_interval(self, model):
        core = cores(1, 2.6)[0]
        for scale in (0.0, 0.3, 1.0):
            a = model.core_activity(core, 3.0, MEMORY_BOUND, scale)
            assert 0.0 <= a <= 1.0

    def test_stalls_reduce_activity(self, model):
        core = cores(1, 2.6)[0]
        compute = model.core_activity(core, 3.0, COMPUTE_BOUND, 1.0)
        latency_bound = model.core_activity(
            core,
            3.0,
            WorkloadCharacteristics(name="lb", base_cpi=0.8, miss_rate=0.004),
            1.0,
        )
        assert latency_bound < compute


@given(
    n_cores=st.integers(min_value=1, max_value=12),
    freq=st.sampled_from([1.2, 1.9, 2.6, 3.1]),
    uncore=st.sampled_from([1.2, 2.1, 3.0]),
    siblings=st.sampled_from([1, 2]),
)
def test_property_capacity_positive_and_demand_never_exceeded(
    n_cores, freq, uncore, siblings
):
    machine = Machine()
    model = machine.perf_model
    for chars in (COMPUTE_BOUND, MEMORY_BOUND, ATOMIC_CONTENTION, HASHTABLE_INSERT):
        perf = model.resolve(
            cores(n_cores, freq, siblings),
            uncore,
            SocketLoad(chars, demand_instructions_per_s=5e9),
        )
        assert perf.capacity_ips > 0
        assert 0.0 <= perf.executed_ips <= perf.capacity_ips + 1e-6
        assert perf.executed_ips <= 5e9 + 1e-6
        assert perf.traffic_gbs >= 0
