"""Plain-text report formatting for run results."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.metrics import RunResult


def run_summary(result: RunResult) -> str:
    """One multi-line human-readable block for a single run."""
    lines = [
        f"policy          : {result.policy}",
        f"workload        : {result.workload_name}",
        f"profile         : {result.profile_name} ({result.duration_s:.0f} s)",
        f"queries         : {result.queries_completed}/{result.queries_submitted}",
        f"energy          : {result.total_energy_j:.0f} J",
        f"average power   : {result.average_power_w():.1f} W",
    ]
    mean = result.mean_latency_s()
    if mean is not None:
        lines.append(f"mean latency    : {1000 * mean:.1f} ms")
        lines.append(
            f"p99 latency     : {1000 * result.percentile_latency_s(99):.1f} ms"
        )
        lines.append(f"violations      : {result.violation_fraction():.1%}")
    return "\n".join(lines)


def comparison_table(results: dict[str, RunResult]) -> str:
    """Aligned table comparing several runs of the same experiment.

    Raises:
        SimulationError: on an empty result set.
    """
    if not results:
        raise SimulationError("nothing to compare")
    header = (
        f"{'run':>14} {'energy J':>10} {'power W':>9} "
        f"{'mean ms':>9} {'p99 ms':>9} {'viol':>7}"
    )
    rows = [header, "-" * len(header)]
    for name, result in results.items():
        mean = result.mean_latency_s()
        p99 = result.percentile_latency_s(99)
        rows.append(
            f"{name:>14} {result.total_energy_j:10.0f} "
            f"{result.average_power_w():9.1f} "
            f"{1000 * mean if mean is not None else float('nan'):9.1f} "
            f"{1000 * p99 if p99 is not None else float('nan'):9.1f} "
            f"{result.violation_fraction():7.1%}"
        )
    return "\n".join(rows)
