"""Cost-accounted operator execution.

Operators run *for real* against partition data (inserts insert, scans
scan) and report the :class:`~repro.dbms.messages.WorkCost` they incurred,
derived from the actual work done: rows touched, index probes performed,
bytes moved.  The constants below are the per-unit costs in the hardware
model's currency (instructions retired, DRAM bytes); they were chosen so
typical operator mixes land in realistic instruction counts (a point
lookup ≈ a few hundred instructions, a 64 K-row scan ≈ half a million).

High-rate simulations use :func:`modeled_cost` helpers to fabricate the
same costs without touching data.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.dbms.messages import Operation, WorkCost
from repro.storage.partition import Partition

# -- unit costs ----------------------------------------------------------------

#: Instructions to scan one row of one column (vectorized compare).
INSTR_PER_SCAN_ROW = 4.0
#: Instructions per hash-index probe step.
INSTR_PER_PROBE = 40.0
#: Instructions to materialize one output row.
INSTR_PER_MATERIALIZE = 120.0
#: Instructions of fixed per-operator dispatch overhead.
INSTR_DISPATCH = 200.0
#: Instructions to append one row across all columns (no index).
INSTR_PER_INSERT = 300.0
#: Instructions to update one field in place.
INSTR_PER_UPDATE = 180.0


def _scan_cost(rows: int, row_bytes: int, produced: int) -> WorkCost:
    """Cost of scanning ``rows`` rows and materializing ``produced``."""
    return WorkCost(
        instructions=INSTR_DISPATCH
        + rows * INSTR_PER_SCAN_ROW
        + produced * INSTR_PER_MATERIALIZE,
        bytes_accessed=float(rows * row_bytes),
    )


# -- real operators ----------------------------------------------------------------


def insert_op(table_name: str, row: Sequence[Any]) -> Operation:
    """Insert one row into a partition's fragment of ``table_name``."""

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        table = partition.table(table_name)
        probes_before = sum(
            idx.probe_count
            for name in table.indexed_columns
            if (idx := table.index(name)) is not None
        )
        position = table.insert(row)
        probes_after = sum(
            idx.probe_count
            for name in table.indexed_columns
            if (idx := table.index(name)) is not None
        )
        cost = WorkCost(
            instructions=INSTR_PER_INSERT
            + (probes_after - probes_before) * INSTR_PER_PROBE,
            bytes_accessed=float(table.schema.row_width_bytes()),
        )
        return position, cost

    return run


def lookup_op(
    table_name: str, column: str, key: int, project: Sequence[str] | None = None
) -> Operation:
    """Point lookup via index if available, else a scan."""

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        table = partition.table(table_name)
        index = table.index(column)
        if index is not None:
            before = index.probe_count
            positions = index.lookup(key)
            probes = index.probe_count - before
            instructions = INSTR_DISPATCH + probes * INSTR_PER_PROBE
            bytes_accessed = 64.0 * max(1, probes)  # cacheline per probe
        else:
            positions = [int(p) for p in table.scan_equal(column, key)]
            instructions = INSTR_DISPATCH + table.row_count * INSTR_PER_SCAN_ROW
            bytes_accessed = float(
                table.row_count * table.schema.column(column).dtype.width_bytes
            )
        names = list(project) if project else list(table.schema.names)
        rows = table.select(positions, names)
        cost = WorkCost(
            instructions=instructions + len(rows) * INSTR_PER_MATERIALIZE,
            bytes_accessed=bytes_accessed,
        )
        return rows, cost

    return run


def update_op(table_name: str, column: str, key: int, field: str, value: Any) -> Operation:
    """Point update: locate by ``column == key``, set ``field = value``."""

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        table = partition.table(table_name)
        index = table.index(column)
        if index is not None:
            before = index.probe_count
            positions = index.lookup(key)
            probes = index.probe_count - before
            instructions = INSTR_DISPATCH + probes * INSTR_PER_PROBE
            bytes_accessed = 64.0 * max(1, probes)
        else:
            positions = [int(p) for p in table.scan_equal(column, key)]
            instructions = INSTR_DISPATCH + table.row_count * INSTR_PER_SCAN_ROW
            bytes_accessed = float(
                table.row_count * table.schema.column(column).dtype.width_bytes
            )
        for position in positions:
            table.update(position, field, value)
        cost = WorkCost(
            instructions=instructions + len(positions) * INSTR_PER_UPDATE,
            bytes_accessed=bytes_accessed + 64.0 * len(positions),
        )
        return len(positions), cost

    return run


def scan_op(
    table_name: str,
    column: str,
    low: Any,
    high: Any,
    project: Sequence[str] | None = None,
) -> Operation:
    """Range scan: full column scan, materializing matches."""

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        table = partition.table(table_name)
        positions = table.scan_range(column, low, high)
        names = list(project) if project else [column]
        rows = table.select(positions, names)
        width = table.schema.column(column).dtype.width_bytes
        return rows, _scan_cost(table.row_count, width, len(rows))

    return run


def aggregate_op(
    table_name: str,
    filter_column: str,
    low: Any,
    high: Any,
    sum_column: str,
) -> Operation:
    """Filtered sum: scan ``filter_column``, sum ``sum_column`` on matches."""

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        table = partition.table(table_name)
        positions = table.scan_range(filter_column, low, high)
        total = table.aggregate_sum(sum_column, positions)
        width = (
            table.schema.column(filter_column).dtype.width_bytes
            + table.schema.column(sum_column).dtype.width_bytes
        )
        cost = _scan_cost(table.row_count, width, 1)
        return total, cost

    return run


# -- modeled costs ----------------------------------------------------------------


def modeled_lookup_cost(probes: float = 1.4) -> WorkCost:
    """Cost of an index point lookup without executing it."""
    return WorkCost(
        instructions=INSTR_DISPATCH
        + probes * INSTR_PER_PROBE
        + INSTR_PER_MATERIALIZE,
        bytes_accessed=64.0 * probes,
    )


def modeled_scan_cost(rows: int, row_bytes: int, selectivity: float = 0.01) -> WorkCost:
    """Cost of scanning ``rows`` rows without executing it."""
    produced = int(rows * selectivity)
    return _scan_cost(rows, row_bytes, produced)


def modeled_insert_cost(indexed: bool) -> WorkCost:
    """Cost of one insert (with or without index maintenance)."""
    extra = 2.0 * INSTR_PER_PROBE if indexed else 0.0
    return WorkCost(instructions=INSTR_PER_INSERT + extra, bytes_accessed=96.0)


def hash_join_aggregate_op(
    fact_table: str,
    fact_key: str,
    dim_table: str,
    dim_key: str,
    dim_filter: str,
    dim_value: Any,
    sum_column: str,
) -> Operation:
    """Hash join fact ⋈ dim with a dimension filter, summing a measure.

    The classic star-schema probe pipeline (e.g. SSB Q2.x): build a hash
    set of the dimension keys surviving ``dim_filter == dim_value``, scan
    the fact fragment, probe each row's foreign key, and sum
    ``sum_column`` over the matches.  Costs reflect the actual work:
    build-side inserts, per-row probes, and the bytes of both scans.
    """

    def run(partition: Partition) -> tuple[Any, WorkCost]:
        from repro.storage.hashindex import HashIndex

        dim = partition.table(dim_table)
        fact = partition.table(fact_table)

        build = HashIndex(initial_capacity=max(16, dim.row_count * 2))
        dim_filter_col = dim.column(dim_filter)
        dim_key_col = dim.column(dim_key)
        build_rows = 0
        for row in range(dim.row_count):
            if dim_filter_col.get(row) == dim_value:
                build.insert(int(dim_key_col.get(row)), row)
                build_rows += 1

        fact_key_col = fact.column(fact_key)
        measure_col = fact.column(sum_column)
        total = 0.0
        matches = 0
        probes_before = build.probe_count
        for row in range(fact.row_count):
            if build.contains(int(fact_key_col.get(row))):
                total += float(measure_col.get(row))
                matches += 1
        probes = build.probe_count - probes_before

        instructions = (
            INSTR_DISPATCH
            + dim.row_count * INSTR_PER_SCAN_ROW  # build-side scan
            + build_rows * 2 * INSTR_PER_PROBE  # build-side inserts
            + fact.row_count * INSTR_PER_SCAN_ROW  # probe-side scan
            + probes * INSTR_PER_PROBE
            + matches * INSTR_PER_MATERIALIZE / 4  # aggregate update
        )
        bytes_accessed = float(
            dim.row_count
            * (
                dim.schema.column(dim_filter).dtype.width_bytes
                + dim.schema.column(dim_key).dtype.width_bytes
            )
            + fact.row_count
            * (
                fact.schema.column(fact_key).dtype.width_bytes
                + fact.schema.column(sum_column).dtype.width_bytes
            )
        )
        return (total, matches), WorkCost(
            instructions=instructions, bytes_accessed=bytes_accessed
        )

    return run
