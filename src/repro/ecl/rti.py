"""The race-to-idle (RTI) controller of the socket-level ECL (§5.1).

Two reasons to race-to-idle in the under-utilization zone:

1. it partially amortizes the high cost of activating the *first* core
   of a socket (which drags the whole uncore/LLC awake, Fig. 4);
2. it emulates any performance level for which no configuration exists —
   duty-cycling between the most energy-efficient configuration and idle
   realizes every level below the optimal zone.

The cost of RTI is latency: work arriving during an idle stint waits.
Hence the controller (a) switches at a high frequency (up to
``max_cycles`` per ECL interval), (b) raises the cycle count — shortening
idle stints — when the system-level ECL reports shrinking latency
headroom, and (c) disables RTI entirely when the headroom is critical.
Idle phases are aligned to a machine-global grid so that sockets idle
*together* — only then can the uncore halt (Fig. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ControlError
from repro.profiles.configuration import Configuration
from repro.units import clamp


@dataclass(frozen=True)
class RtiPlan:
    """Duty-cycle plan for one ECL interval.

    Attributes:
        active_configuration: configuration used during busy phases.
        duty: fraction of each cycle spent in the active configuration
            (1.0 = RTI disabled, stay active all interval).
        period_s: cycle length; idle occupies the cycle's tail so that
            equal-period sockets overlap their idle windows.
    """

    active_configuration: Configuration
    duty: float
    period_s: float

    @property
    def uses_rti(self) -> bool:
        """Whether any idle phase exists."""
        return self.duty < 1.0

    def is_active_phase(self, now_s: float) -> bool:
        """Whether ``now_s`` falls into the busy part of the cycle.

        Phases are anchored at absolute time 0 (the global grid shared by
        all sockets), so two sockets with the same period idle in unison.
        The small positive offset keeps times that land exactly on a cycle
        boundary (within float error) inside the *active* phase.
        """
        if not self.uses_rti:
            return True
        phase = ((now_s + 1e-9) % self.period_s) / self.period_s
        return phase < self.duty

    def next_phase_change_s(self, now_s: float) -> float:
        """Absolute time of the next phase-boundary after ``now_s``.

        Mirrors :meth:`is_active_phase` exactly — including its boundary
        offset — so the returned instant is the earliest time at which
        that predicate can change value.  The macro-stepping runner uses
        it as an event horizon; with RTI disabled there is no flip and
        the horizon is unbounded.  A zero duty never flips either — the
        predicate is constant False, every cycle is pure idle — so the
        horizon is unbounded there too; without this, a fully idle socket
        (duty 0 at the minimum period) would fence every span at a cycle
        boundary on which nothing happens.
        """
        if not self.uses_rti or self.duty <= 0.0:
            return float("inf")
        shifted = now_s + 1e-9
        cycle_start = shifted - (shifted % self.period_s)
        boundary = self.duty * self.period_s
        if shifted % self.period_s < boundary:
            return cycle_start + boundary - 1e-9
        return cycle_start + self.period_s - 1e-9


class RtiController:
    """Plans RTI duty cycles for one socket."""

    def __init__(
        self,
        max_cycles_per_interval: int = 50,
        min_period_s: float = 0.02,
        min_duty_quantum_s: float = 0.002,
        max_idle_stint_s: float = 0.015,
    ):
        if max_cycles_per_interval < 1:
            raise ControlError(
                f"max cycles must be >= 1, got {max_cycles_per_interval}"
            )
        if min_period_s <= 0 or min_duty_quantum_s <= 0 or max_idle_stint_s <= 0:
            raise ControlError("periods, quanta, and stints must be > 0")
        self.max_cycles_per_interval = max_cycles_per_interval
        self.min_period_s = min_period_s
        self.min_duty_quantum_s = min_duty_quantum_s
        self.max_idle_stint_s = max_idle_stint_s

    def period_for(
        self, duty: float, interval_s: float, time_to_violation_s: float
    ) -> float:
        """Cycle period bounding the idle stint.

        The latency an RTI cycle adds is its idle stint
        ``(1 - duty) × period``, so the period is chosen to keep the stint
        under :attr:`max_idle_stint_s` (halved when the latency headroom
        shrinks below ~4 ECL intervals), subject to the switching-rate
        bounds (at most ``max_cycles_per_interval``, at least the minimum
        period).
        """
        if interval_s <= 0:
            raise ControlError(f"interval must be > 0, got {interval_s}")
        idle_budget = self.max_idle_stint_s
        if time_to_violation_s < 4.0 * interval_s:
            idle_budget *= 0.5
        period = idle_budget / max(1.0 - duty, 0.05)
        longest = interval_s / 2.0
        shortest = max(
            self.min_period_s, interval_s / self.max_cycles_per_interval
        )
        period = clamp(period, shortest, longest)
        # The active stint must be at least one schedulable quantum, or the
        # configuration would never actually run; at very low duties this
        # wins over the idle-stint budget (a near-idle system can afford a
        # longer wait) — but never beyond ~6 stint budgets, or a stray
        # query would sit out most of the latency limit in one idle phase.
        if duty > 0 and duty * period < self.min_duty_quantum_s:
            stretched = self.min_duty_quantum_s / duty
            ceiling = max(shortest, 6.0 * self.max_idle_stint_s / max(1.0 - duty, 0.05))
            period = clamp(stretched, shortest, min(longest, ceiling))
        return period

    def plan(
        self,
        demand_level: float,
        optimal_configuration: Configuration,
        optimal_performance: float,
        interval_s: float,
        time_to_violation_s: float,
        headroom: float = 1.10,
    ) -> RtiPlan:
        """Build the duty-cycle plan for the coming interval.

        The duty carries a small provisioning ``headroom`` — running at
        exactly the estimated demand would leave queues growing without
        bound under any fluctuation.  Demand at or above the optimal
        configuration's performance disables RTI, and so does critical
        latency headroom (less than two ECL intervals) — an idle stint
        would push queries over the limit.

        Raises:
            ControlError: on non-positive optimal performance or headroom
                below 1.
        """
        if optimal_performance <= 0:
            raise ControlError(
                f"optimal performance must be > 0, got {optimal_performance}"
            )
        if headroom < 1.0:
            raise ControlError(f"headroom must be >= 1, got {headroom}")
        duty = clamp(headroom * demand_level / optimal_performance, 0.0, 1.0)
        if duty >= 1.0 or time_to_violation_s < 2.0 * interval_s:
            return RtiPlan(
                active_configuration=optimal_configuration,
                duty=1.0,
                period_s=interval_s,
            )
        period = self.period_for(duty, interval_s, time_to_violation_s)
        # The simulation (and a real OS scheduler) can only switch on a
        # finite grid; round the duty *up* to the next representable slot
        # so the delivered capacity never falls below the demanded level —
        # rounding down would run the queue exactly at its critical load.
        slot = self.min_duty_quantum_s / period
        if slot > 0 and duty > 0:
            slots = max(1, math.ceil(duty / slot - 1e-9))
            duty = min(1.0, slots * slot)
        if (1.0 - duty) * period < self.min_duty_quantum_s:
            duty = 1.0  # idle stint below a quantum: not worth switching
        return RtiPlan(
            active_configuration=optimal_configuration,
            duty=duty,
            period_s=period,
        )
