"""Tests for the meta calibration (Fig. 12)."""

import pytest

from repro.errors import ControlError
from repro.ecl.calibration import (
    APPLY_CANDIDATES,
    MEASURE_CANDIDATES,
    MetaCalibrator,
)
from repro.hardware.machine import Machine


@pytest.fixture(scope="module")
def calibration():
    """Run the (slow-ish) calibration once for the whole module."""
    machine = Machine(seed=21)
    return MetaCalibrator(machine, 0).run()


class TestCalibrationOutcome:
    def test_apply_time_fast(self, calibration):
        """Fig. 12: applying a configuration is accurate even at 1 ms."""
        assert calibration.apply_time_s <= 0.005

    def test_measure_time_around_100ms(self, calibration):
        """Fig. 12: ~100 ms is the shortest trustworthy RAPL window."""
        assert 0.02 <= calibration.measure_time_s <= 0.2

    def test_measure_deviation_grows_for_short_windows(self, calibration):
        devs = calibration.measure_deviation
        longest = max(devs)
        shortest = min(devs)
        assert devs[shortest] > devs[longest]

    def test_deviation_curves_cover_probed_candidates(self, calibration):
        assert set(calibration.measure_deviation) <= set(MEASURE_CANDIDATES)
        assert set(calibration.apply_deviation) <= set(APPLY_CANDIDATES)
        assert calibration.measure_deviation
        assert calibration.apply_deviation


class TestValidation:
    def test_invalid_threshold(self):
        with pytest.raises(ControlError):
            MetaCalibrator(Machine(), deviation_threshold=0.0)

    def test_invalid_repetitions(self):
        with pytest.raises(ControlError):
            MetaCalibrator(Machine(), repetitions=0)
