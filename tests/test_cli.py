"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main, make_profile, make_workload
from repro.placement import DEFAULT_PLACEMENT, registered_placements
from repro.sim import DEFAULT_POLICY, registered_policies


class TestParsing:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == DEFAULT_POLICY
        assert args.workload == "kv-non-indexed"
        assert args.profile == "spike"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_every_registered_policy_accepted(self):
        for name in registered_policies():
            args = build_parser().parse_args(["run", "--policy", name])
            assert args.policy == name

    def test_out_of_tree_policy_reaches_parser(self):
        from repro.sim import register_policy, unregister_policy
        from repro.sim.metrics import SampleAnnotations

        class Null:
            @classmethod
            def build(cls, engine, config):
                return cls()

            def on_tick(self, now_s, dt_s):
                pass

            def annotate_sample(self):
                return SampleAnnotations()

        register_policy("cli-test-null", Null.build)
        try:
            args = build_parser().parse_args(
                ["run", "--policy", "cli-test-null"]
            )
            assert args.policy == "cli-test-null"
        finally:
            unregister_policy("cli-test-null")


class TestFactories:
    def test_all_workloads_constructible(self):
        for name in WORKLOADS:
            workload = make_workload(name)
            assert workload.nominal_peak_qps > 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            make_workload("oracle")

    def test_profiles(self):
        for name in ("spike", "twitter", "constant", "sine"):
            profile = make_profile(name, 30.0, 0.5)
            assert profile.duration_s > 0

    def test_unknown_profile(self):
        with pytest.raises(SystemExit):
            make_profile("square", 30.0, 0.5)


class TestCommands:
    def test_run_constant(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "kv-non-indexed",
                "--profile",
                "constant",
                "--level",
                "0.3",
                "--duration",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total energy" in out
        assert "mean latency" in out

    def test_profile_micro(self, capsys):
        rc = main(["profile", "--workload", "compute-bound"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal configuration" in out
        assert "skyline" in out

    def test_profile_benchmark(self, capsys):
        rc = main(["profile", "--workload", "ssb-non-indexed"])
        assert rc == 0
        assert "u3.0GHz" in capsys.readouterr().out

    def test_list_policies(self, capsys):
        rc = main(["run", "--list-policies"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in registered_policies():
            assert name in out
        assert "(reference)" in out

    def test_list_placements(self, capsys):
        rc = main(["run", "--list-placements"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in registered_placements():
            assert name in out
        assert "(default)" in out

    def test_placement_flag_parses(self):
        for name in registered_placements():
            args = build_parser().parse_args(["run", "--placement", name])
            assert args.placement == name
        args = build_parser().parse_args(["run"])
        assert args.placement == DEFAULT_PLACEMENT

    def test_unknown_placement_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--placement", "magic"])

    def test_compare_accepts_placement(self):
        args = build_parser().parse_args(
            ["compare", "--placement", "consolidate"]
        )
        assert args.placement == "consolidate"

    def test_run_with_placement(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "kv-non-indexed",
                "--profile",
                "constant",
                "--level",
                "0.2",
                "--duration",
                "1",
                "--placement",
                "balance",
            ]
        )
        assert rc == 0
        assert "total energy" in capsys.readouterr().out


class TestTelemetryCommands:
    RUN_ARGS = [
        "run",
        "--workload",
        "kv-non-indexed",
        "--profile",
        "constant",
        "--level",
        "0.3",
        "--duration",
        "2",
    ]

    def test_run_with_trace_and_timings(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(self.RUN_ARGS + ["--trace", str(trace), "--timings"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "total energy" in captured.out
        assert "us/tick" in captured.out  # the timing table
        assert "trace" in captured.err
        lines = trace.read_text(encoding="utf-8").strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"

    def test_report_from_trace_markdown(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        rc = main(["report", "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# Run trace report" in out
        assert "## Events" in out
        assert "## Totals" in out

    def test_report_trace_csv_to_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        out_file = tmp_path / "samples.csv"
        rc = main(
            [
                "report",
                "--trace",
                str(trace),
                "--format",
                "csv",
                "--out",
                str(out_file),
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out == ""
        assert out_file.read_text(encoding="utf-8").startswith("time_s,")

    def test_report_on_mixed_trace_directory(self, capsys, tmp_path):
        """Single-node and cluster traces mix without crashing the report."""
        single = tmp_path / "a_single.jsonl"
        cluster = tmp_path / "b_cluster.jsonl"
        main(self.RUN_ARGS + ["--trace", str(single)])
        main(
            self.RUN_ARGS
            + ["--nodes", "2", "--policy", "ecl-cluster", "--trace", str(cluster)]
        )
        capsys.readouterr()
        rc = main(["report", "--trace", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# a_single.jsonl" in out
        assert "# b_cluster.jsonl" in out
        # The cluster run reports node power; the single-node run's
        # report simply lacks the section rather than crashing on the
        # missing schema additions.
        assert "## Node power" in out.split("# b_cluster.jsonl")[1]
        assert "## Node power" not in out.split("# b_cluster.jsonl")[0]

    def test_report_trace_directory_rejects_csv(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        with pytest.raises(SystemExit):
            main(["report", "--trace", str(tmp_path), "--format", "csv"])

    def test_report_empty_trace_directory(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "--trace", str(tmp_path)])

    def test_report_single_node_trace_has_no_node_power_section(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        rc = main(["report", "--trace", str(trace)])
        assert rc == 0
        assert "## Node power" not in capsys.readouterr().out

    def test_report_from_cache_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(
            [
                "compare",
                "--workload",
                "kv-non-indexed",
                "--profile",
                "constant",
                "--level",
                "0.3",
                "--duration",
                "1",
            ]
        )
        capsys.readouterr()
        rc = main(["report", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("| policy |")
        rc = main(["report", "--cache-dir", str(tmp_path), "--format", "csv"])
        assert rc == 0
        assert capsys.readouterr().out.startswith("policy,")

    def test_report_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report"])
        with pytest.raises(SystemExit):
            main(
                [
                    "report",
                    "--trace",
                    str(tmp_path / "t.jsonl"),
                    "--cache-dir",
                    str(tmp_path),
                ]
            )

    def test_report_empty_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "--cache-dir", str(tmp_path)])


class TestEnvironmentFlags:
    RUN_ARGS = [
        "run",
        "--workload",
        "kv-non-indexed",
        "--profile",
        "constant",
        "--level",
        "0.3",
        "--duration",
        "2",
    ]

    def test_list_environments(self, capsys):
        from repro.environment import registered_environments

        rc = main(["run", "--list-environments"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in registered_environments():
            assert name in out

    def test_list_profiles_renders_registry(self, capsys):
        from repro.loadprofiles import registered_profiles

        rc = main(["run", "--list-profiles"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in registered_profiles():
            assert name in out

    def test_no_knobs_means_no_environment(self):
        from repro.cli import build_parser, make_environment_from_args

        args = build_parser().parse_args(self.RUN_ARGS)
        assert make_environment_from_args(args, 2.0) is None

    def test_named_preset(self):
        from repro.cli import build_parser, make_environment_from_args

        args = build_parser().parse_args(
            self.RUN_ARGS + ["--environment", "diurnal-carbon"]
        )
        env = make_environment_from_args(args, 2.0)
        assert env.name == "diurnal-carbon"
        assert env.pue > 1.0

    def test_pue_override_builds_custom_environment(self):
        from repro.cli import build_parser, make_environment_from_args

        args = build_parser().parse_args(self.RUN_ARGS + ["--pue", "1.5"])
        env = make_environment_from_args(args, 2.0)
        assert env.name == "custom"
        assert env.pue == 1.5

    def test_carbon_trace_override(self, tmp_path):
        from repro.cli import build_parser, make_environment_from_args

        trace = tmp_path / "carbon.csv"
        trace.write_text("time_s,value\n0,100\n1,900\n")
        args = build_parser().parse_args(
            self.RUN_ARGS
            + ["--environment", "flat", "--carbon-trace", str(trace)]
        )
        env = make_environment_from_args(args, 2.0)
        assert env.name == "flat+custom"
        assert env.carbon.value(0.5) == 100.0
        assert env.carbon.value(1.5) == 900.0

    def test_unknown_environment_rejected(self):
        from repro.cli import build_parser, make_environment_from_args

        args = build_parser().parse_args(
            self.RUN_ARGS + ["--environment", "venus"]
        )
        with pytest.raises(SystemExit):
            make_environment_from_args(args, 2.0)

    def test_run_prints_environment_lines(self, capsys):
        rc = main(self.RUN_ARGS + ["--environment", "diurnal-carbon"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "environment       : diurnal-carbon" in out
        assert "gCO2" in out
        assert "carbon/query" in out

    def test_run_without_environment_prints_no_lines(self, capsys):
        rc = main(self.RUN_ARGS)
        assert rc == 0
        assert "environment       :" not in capsys.readouterr().out

    def test_environment_report_section(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(
            self.RUN_ARGS
            + ["--environment", "diurnal-carbon", "--trace", str(trace)]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## Environment" in out
        assert "diurnal-carbon" in out

    def test_plain_trace_has_no_environment_section(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        main(["report", "--trace", str(trace)])
        assert "## Environment" not in capsys.readouterr().out


class TestReplayFlag:
    def test_replay_trace_wins_over_profile(self, tmp_path):
        from repro.cli import build_parser, resolve_profile

        trace = tmp_path / "arrivals.csv"
        trace.write_text("time_s,count\n0.5,2\n1.5,1\n")
        args = build_parser().parse_args(
            ["run", "--profile", "spike", "--replay-trace", str(trace)]
        )
        profile = resolve_profile(args)
        assert profile.name == "replay:arrivals"
        assert profile.arrival_count == 3

    def test_missing_replay_trace_exits(self, tmp_path):
        from repro.cli import build_parser, resolve_profile

        args = build_parser().parse_args(
            ["run", "--replay-trace", str(tmp_path / "nope.csv")]
        )
        with pytest.raises(SystemExit):
            resolve_profile(args)

    def test_run_from_replay_trace(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.csv"
        rows = ["time_s,count"] + [f"{0.1 * i:.1f},2" for i in range(1, 11)]
        trace.write_text("\n".join(rows) + "\n")
        rc = main(["run", "--replay-trace", str(trace), "--duration", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total energy" in out
        # The trace defines the run: its name and its own duration
        # (the last arrival), not the --duration flag.
        assert "replay:arrivals (1 s)" in out
