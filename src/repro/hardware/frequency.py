"""Clock domains: core P-states, the uncore clock, EPB and the EET.

The Haswell-EP generation introduced fully integrated voltage regulators
(FIVR), giving every physical core its own clock plus one uncore clock per
socket that drives the LLC and memory controllers (paper Fig. 2).  This
module models:

* the discrete P-state ladders for core (1.2–2.6 GHz, 3.1 GHz turbo) and
  uncore (1.2–3.0 GHz) clocks,
* the *energy-performance bias* (EPB) MSR per hardware thread,
* the *energy-efficient turbo* (EET): under the powersave/balanced EPB the
  CPU dwells ~1 s at the nominal frequency before entering turbo (paper
  Fig. 7(a)), whereas the performance EPB enters turbo immediately
  (Fig. 7(b)),
* automatic *uncore frequency scaling* (UFS), which the paper found to
  always pick the highest uncore clock under load — wasting ~12 W on
  compute-bound work (Fig. 8).  The UFS heuristic is EPB-aware: under
  the default balanced bias it races to the maximum, while a machine-wide
  powersave bias makes it settle on a mid-ladder step (the behaviour
  energy-feature surveys measured on Haswell-EP, where the auto uncore
  clock follows the energy-performance bias).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.presets import HaswellEPParameters
from repro.hardware.topology import Topology


class EnergyPerformanceBias(enum.Enum):
    """The EPB hint written per hardware thread via MSR."""

    POWERSAVE = "powersave"
    BALANCED = "balanced"
    PERFORMANCE = "performance"

    @property
    def delays_turbo(self) -> bool:
        """Whether this bias inserts the ~1 s EET delay before turbo."""
        return self is not EnergyPerformanceBias.PERFORMANCE


@dataclass(frozen=True)
class PState:
    """One step of a frequency ladder."""

    index: int
    ghz: float


class FrequencyLadder:
    """A discrete, sorted ladder of allowed frequencies with snapping."""

    def __init__(self, steps_ghz: tuple[float, ...]):
        if not steps_ghz:
            raise ConfigurationError("frequency ladder must not be empty")
        ordered = tuple(sorted(steps_ghz))
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError(f"duplicate P-states in ladder {steps_ghz}")
        self._steps = ordered
        #: Exact-value memo for :meth:`validate` (it sits on the
        #: configuration-apply hot path; the tolerance scan only runs
        #: once per distinct requested value).
        self._validated: dict[float, float] = {}

    @property
    def steps(self) -> tuple[float, ...]:
        """All frequencies in ascending order."""
        return self._steps

    @property
    def minimum(self) -> float:
        """Lowest frequency on the ladder."""
        return self._steps[0]

    @property
    def maximum(self) -> float:
        """Highest frequency on the ladder."""
        return self._steps[-1]

    def validate(self, ghz: float) -> float:
        """Return ``ghz`` unchanged if it is an exact ladder step.

        Raises:
            ConfigurationError: if the frequency is not a valid P-state.
        """
        cached = self._validated.get(ghz)
        if cached is not None:
            return cached
        for step in self._steps:
            if abs(step - ghz) < 1e-9:
                self._validated[ghz] = step
                return step
        raise ConfigurationError(
            f"{ghz} GHz is not a valid P-state; ladder is "
            f"{self.minimum}-{self.maximum} GHz"
        )

    def snap(self, ghz: float) -> float:
        """Snap an arbitrary frequency to the nearest ladder step."""
        return min(self._steps, key=lambda step: abs(step - ghz))

    def pstate(self, ghz: float) -> PState:
        """Return the :class:`PState` for an exact ladder frequency."""
        value = self.validate(ghz)
        return PState(index=self._steps.index(value), ghz=value)

    def subset(self, count: int, include_turbo: bool = True) -> tuple[float, ...]:
        """Pick ``count`` representative frequencies for profile generation.

        Always includes the lowest and highest step; intermediate steps are
        spaced evenly across the ladder.  With ``include_turbo=False`` the
        top step is excluded before selection (used for the uncore ladder,
        which has no turbo, this is a no-op concept-wise).
        """
        steps = self._steps if include_turbo else self._steps[:-1]
        if count <= 0:
            raise ConfigurationError(f"subset count must be >= 1, got {count}")
        if count >= len(steps):
            return steps
        if count == 1:
            return (steps[-1],)
        picks = {
            steps[round(i * (len(steps) - 1) / (count - 1))] for i in range(count)
        }
        return tuple(sorted(picks))


class FrequencyDomains:
    """Mutable clock state of the whole machine.

    Tracks the *requested* frequency of every core clock and uncore clock
    plus per-thread EPB, and resolves the *effective* frequencies at a
    given simulation time (applying the EET delay and auto-UFS policy).
    """

    def __init__(
        self,
        topology: Topology,
        params: HaswellEPParameters,
        socket_params: "tuple[HaswellEPParameters, ...] | None" = None,
    ):
        self._topology = topology
        self._params = params
        #: Per-socket parameter sets — on a cluster machine each socket
        #: carries its owning node's parameters; single-node machines
        #: repeat the one ``params`` object, so every per-socket lookup
        #: resolves to exactly the historical values.
        if socket_params is None:
            socket_params = tuple(params for _ in topology.sockets)
        self._socket_params = socket_params
        self.core_ladder = FrequencyLadder(params.core_pstates_ghz)
        self.uncore_ladder = FrequencyLadder(params.uncore_pstates_ghz)
        #: Per-socket ladders; sockets whose parameters match the default
        #: share the default ladder objects (and their validation memos).
        core_ladders: dict[tuple[float, ...], FrequencyLadder] = {
            params.core_pstates_ghz: self.core_ladder
        }
        uncore_ladders: dict[tuple[float, ...], FrequencyLadder] = {
            params.uncore_pstates_ghz: self.uncore_ladder
        }
        self._core_ladders = tuple(
            core_ladders.setdefault(
                sp.core_pstates_ghz, FrequencyLadder(sp.core_pstates_ghz)
            )
            for sp in socket_params
        )
        self._uncore_ladders = tuple(
            uncore_ladders.setdefault(
                sp.uncore_pstates_ghz, FrequencyLadder(sp.uncore_pstates_ghz)
            )
            for sp in socket_params
        )

        cores = [
            (s.socket_id, c.core_id) for s in topology.sockets for c in s.cores
        ]
        self._core_request: dict[tuple[int, int], float] = {
            key: socket_params[key[0]].core_nominal_ghz for key in cores
        }
        #: Simulation time at which each core last requested the turbo step.
        self._turbo_request_time: dict[tuple[int, int], float | None] = {
            key: None for key in cores
        }
        #: Cores with an outstanding turbo request (possibly in EET dwell).
        self._pending_turbo: set[tuple[int, int]] = set()
        self._uncore_request: dict[int, float | None] = {
            s.socket_id: None for s in topology.sockets
        }  # None = automatic UFS
        self._epb: dict[int, EnergyPerformanceBias] = {
            t.global_id: EnergyPerformanceBias.BALANCED
            for t in topology.iter_threads()
        }
        #: Monotonic counter bumped on every control-state mutation; lets
        #: callers (the machine's step-resolution cache) detect that no
        #: clock request or EPB changed between two steps.
        self._version = 0
        #: Content-fingerprint cache: per-socket interned ids of the
        #: *values* of the clock state.  Every fingerprint input is
        #: socket-local, so invalidation is per socket — reconfiguring
        #: one socket (RTI duty cycling) leaves the other's cached
        #: fingerprint valid.
        self._fingerprint_socket_versions: dict[int, int] = {
            s.socket_id: 0 for s in topology.sockets
        }
        self._fingerprints: dict[int, tuple[int, int]] = {}
        self._fingerprint_ids: dict[tuple, int] = {}
        #: Derived per-core EPB, cached per EPB mutation (the dwell
        #: signature asks for it on every step while turbo is pending).
        self._epb_version = 0
        self._epb_cache_version = -1
        self._epb_cache: dict[tuple[int, int], EnergyPerformanceBias] = {}

    @property
    def version(self) -> int:
        """Control-state version (bumps on any frequency/EPB mutation)."""
        return self._version

    def socket_mutation_version(self, socket_id: int) -> int:
        """Per-socket change counter for this socket's clock inputs.

        Bumps whenever the socket's own frequency requests or EPB mutate;
        equal values guarantee every fingerprint input of the socket is
        unchanged, so per-socket consumers (the machine's one-slot
        resolve memo) can skip re-deriving clocks for sockets untouched
        by a reconfiguration elsewhere.
        """
        return self._fingerprint_socket_versions[socket_id]

    def core_ladder_for(self, socket_id: int) -> FrequencyLadder:
        """The core P-state ladder of one socket (per-node on clusters)."""
        return self._core_ladders[socket_id]

    def uncore_ladder_for(self, socket_id: int) -> FrequencyLadder:
        """The uncore P-state ladder of one socket (per-node on clusters)."""
        return self._uncore_ladders[socket_id]

    def state_fingerprint(self, socket_id: int) -> int:
        """Interned content fingerprint of one socket's clock state.

        Captures every *value* that shapes the socket's effective clocks
        besides time: per-core frequency requests, the uncore request
        (or auto), and the EPB of every thread on the socket.  Unlike
        :attr:`version` — which is monotonic and never repeats — the
        fingerprint returns the *same* id whenever the same state recurs
        (e.g. RTI duty-cycling between two configurations), so the
        machine's step-resolution cache can hit across reconfigurations.
        Time-dependent effects (the EET dwell) are deliberately excluded;
        :meth:`turbo_dwell_signature` covers them.
        """
        version = self._fingerprint_socket_versions[socket_id]
        cached = self._fingerprints.get(socket_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        socket = self._topology.socket(socket_id)
        content = (
            tuple(
                self._core_request[(socket_id, core.core_id)]
                for core in socket.cores
            ),
            self._uncore_request[socket_id],
            tuple(
                self._epb[tid]
                for tid in self._topology.threads_on_socket(socket_id)
            ),
        )
        fingerprint = self._fingerprint_ids.setdefault(
            content, len(self._fingerprint_ids)
        )
        self._fingerprints[socket_id] = (version, fingerprint)
        return fingerprint

    # -- core clocks ---------------------------------------------------------

    def set_core_frequency(
        self, socket_id: int, core_id: int, ghz: float, now: float
    ) -> None:
        """Request a new P-state for one physical core at time ``now``."""
        value = self._core_ladders[socket_id].validate(ghz)
        key = (socket_id, core_id)
        if key not in self._core_request:
            raise ConfigurationError(f"unknown core {core_id} on socket {socket_id}")
        previous = self._core_request[key]
        self._core_request[key] = value
        self._version += 1
        self._fingerprint_socket_versions[socket_id] += 1
        turbo_ghz = self._socket_params[socket_id].core_turbo_ghz
        is_turbo = abs(value - turbo_ghz) < 1e-9
        if is_turbo and abs(previous - turbo_ghz) >= 1e-9:
            self._turbo_request_time[key] = now
        elif not is_turbo:
            self._turbo_request_time[key] = None
        if self._turbo_request_time[key] is None:
            self._pending_turbo.discard(key)
        else:
            self._pending_turbo.add(key)

    def set_socket_core_frequencies(
        self, socket_id: int, frequencies: dict[int, float], now: float
    ) -> None:
        """Request P-states for several cores of one socket at once.

        Equivalent to calling :meth:`set_core_frequency` per core, but
        with one version/fingerprint bump for the whole batch, and cores
        whose request is unchanged are skipped entirely — a duty-cycle
        re-application that moves only a few cores leaves the version
        untouched for the rest (consumers compare versions for equality
        only, so the bump *count* is not part of the contract).
        """
        turbo = self._socket_params[socket_id].core_turbo_ghz
        changed = False
        ladder = self._core_ladders[socket_id]
        for core_id, ghz in frequencies.items():
            value = ladder.validate(ghz)
            key = (socket_id, core_id)
            previous = self._core_request.get(key)
            if previous is None:
                raise ConfigurationError(
                    f"unknown core {core_id} on socket {socket_id}"
                )
            if previous == value:
                # A repeated request changes nothing: non-turbo values
                # keep their cleared dwell, a re-requested turbo keeps
                # its original request time (set_core_frequency only
                # stamps the time on a non-turbo -> turbo transition).
                continue
            self._core_request[key] = value
            changed = True
            if abs(value - turbo) < 1e-9:
                self._turbo_request_time[key] = now
                self._pending_turbo.add(key)
            else:
                self._turbo_request_time[key] = None
                self._pending_turbo.discard(key)
        if changed:
            self._version += 1
            self._fingerprint_socket_versions[socket_id] += 1

    def set_all_core_frequencies(self, ghz: float, now: float) -> None:
        """Request the same P-state for every physical core."""
        for socket_id, core_id in list(self._core_request):
            self.set_core_frequency(socket_id, core_id, ghz, now)

    def requested_core_frequency(self, socket_id: int, core_id: int) -> float:
        """The last requested frequency of a core."""
        return self._core_request[(socket_id, core_id)]

    def effective_core_frequency(
        self, socket_id: int, core_id: int, now: float
    ) -> float:
        """The frequency the core actually runs at time ``now``.

        Applies the energy-efficient turbo: under a powersave/balanced EPB
        the core dwells at the nominal frequency for
        :attr:`HaswellEPParameters.eet_delay_s` after a turbo request.
        """
        key = (socket_id, core_id)
        requested = self._core_request[key]
        params = self._socket_params[socket_id]
        if abs(requested - params.core_turbo_ghz) >= 1e-9:
            return requested
        if not self._core_epb(socket_id, core_id).delays_turbo:
            return requested
        since = self._turbo_request_time[key]
        if since is None or now - since >= params.eet_delay_s:
            return requested
        return params.core_nominal_ghz

    def _core_epb(self, socket_id: int, core_id: int) -> EnergyPerformanceBias:
        """EPB governing a core: PERFORMANCE only if all siblings request it."""
        if self._epb_cache_version != self._epb_version:
            self._epb_cache.clear()
            self._epb_cache_version = self._epb_version
        key = (socket_id, core_id)
        bias = self._epb_cache.get(key)
        if bias is not None:
            return bias
        core = self._topology.socket(socket_id).cores[core_id]
        biases = {self._epb[tid] for tid in core.thread_ids()}
        if biases == {EnergyPerformanceBias.PERFORMANCE}:
            bias = EnergyPerformanceBias.PERFORMANCE
        elif EnergyPerformanceBias.POWERSAVE in biases:
            bias = EnergyPerformanceBias.POWERSAVE
        else:
            bias = EnergyPerformanceBias.BALANCED
        self._epb_cache[key] = bias
        return bias

    def turbo_dwell_signature(self, socket_id: int, now: float) -> tuple[int, ...]:
        """Core ids of a socket still inside their EET dwell at ``now``.

        Together with :attr:`version`, this captures the only way an
        *effective* core frequency can change without a control-state
        mutation: the energy-efficient turbo dwell elapsing.  The machine's
        step-resolution cache keys on it.
        """
        if not self._pending_turbo:
            return ()
        delay = self._socket_params[socket_id].eet_delay_s
        dwelling = []
        for sid, core_id in self._pending_turbo:
            if sid != socket_id:
                continue
            since = self._turbo_request_time[(sid, core_id)]
            if since is None or now - since >= delay:
                continue
            if self._core_epb(sid, core_id).delays_turbo:
                dwelling.append(core_id)
        return tuple(sorted(dwelling))

    def next_dwell_expiry_s(self, now: float) -> float:
        """Earliest future time an EET dwell elapses (``inf`` if none).

        The dwell elapsing is the only machine-internal event that changes
        an effective frequency without a control-state mutation, so the
        macro-stepping runner must never leap across it.
        """
        if not self._pending_turbo:
            return float("inf")
        earliest = float("inf")
        for sid, core_id in self._pending_turbo:
            delay = self._socket_params[sid].eet_delay_s
            since = self._turbo_request_time[(sid, core_id)]
            if since is None or now - since >= delay:
                continue
            if self._core_epb(sid, core_id).delays_turbo:
                earliest = min(earliest, since + delay)
        return earliest

    # -- uncore clock ----------------------------------------------------------

    def set_uncore_frequency(self, socket_id: int, ghz: float) -> None:
        """Pin a socket's uncore clock to a fixed P-state.

        Re-pinning the already-pinned value is a no-op (no version bump).
        """
        if socket_id not in self._uncore_request:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        value = self._uncore_ladders[socket_id].validate(ghz)
        if self._uncore_request[socket_id] == value:
            return
        self._uncore_request[socket_id] = value
        self._version += 1
        self._fingerprint_socket_versions[socket_id] += 1

    def set_uncore_auto(self, socket_id: int) -> None:
        """Hand the socket's uncore clock back to automatic UFS."""
        if socket_id not in self._uncore_request:
            raise ConfigurationError(f"unknown socket id {socket_id}")
        self._uncore_request[socket_id] = None
        self._version += 1
        self._fingerprint_socket_versions[socket_id] += 1

    def uncore_is_auto(self, socket_id: int) -> bool:
        """Whether automatic UFS controls this socket's uncore clock."""
        return self._uncore_request[socket_id] is None

    def effective_uncore_frequency(
        self, socket_id: int, socket_has_active_core: bool
    ) -> float:
        """Resolve the uncore clock of a socket.

        In automatic mode the hardware's UFS heuristic is reproduced as the
        paper measured it: the highest uncore frequency whenever any core
        of the socket is active (a poor decision for compute-bound work,
        Fig. 8) and the lowest frequency otherwise.  The heuristic is
        EPB-aware — when every thread of the socket carries the powersave
        bias, the hardware settles on the mid-ladder step instead of
        racing to the maximum (the measured Haswell-EP behaviour; the
        ``epb-only`` policy's entire saving comes from this).  Pinned mode
        returns the pinned value.  Whether the uncore may *halt* entirely
        is decided by the C-state model, not here.
        """
        requested = self._uncore_request[socket_id]
        if requested is not None:
            return requested
        ladder = self._uncore_ladders[socket_id]
        if not socket_has_active_core:
            return ladder.minimum
        if self.socket_bias_is_powersave(socket_id):
            steps = ladder.steps
            return steps[len(steps) // 2]
        return ladder.maximum

    def socket_bias_is_powersave(self, socket_id: int) -> bool:
        """Whether every hardware thread of a socket hints powersave.

        The package control unit only relaxes shared resources (the
        uncore clock) when no thread on the socket objects.
        """
        threads = self._topology.threads_on_socket(socket_id)
        return all(
            self._epb[tid] is EnergyPerformanceBias.POWERSAVE
            for tid in threads
        )

    # -- EPB -------------------------------------------------------------------

    def set_epb(self, thread_id: int, bias: EnergyPerformanceBias) -> None:
        """Set the energy-performance bias of one hardware thread."""
        if thread_id not in self._epb:
            raise ConfigurationError(f"unknown hardware thread id {thread_id}")
        self._epb[thread_id] = bias
        self._version += 1
        self._epb_version += 1
        socket_id = self._topology.thread(thread_id).socket_id
        self._fingerprint_socket_versions[socket_id] += 1

    def set_epb_all(self, bias: EnergyPerformanceBias) -> None:
        """Set the EPB of every hardware thread."""
        for thread_id in self._epb:
            self._epb[thread_id] = bias
        self._version += 1
        self._epb_version += 1
        for socket_id in self._fingerprint_socket_versions:
            self._fingerprint_socket_versions[socket_id] += 1

    def epb(self, thread_id: int) -> EnergyPerformanceBias:
        """The EPB currently set for a hardware thread."""
        if thread_id not in self._epb:
            raise ConfigurationError(f"unknown hardware thread id {thread_id}")
        return self._epb[thread_id]
