"""Tests for the ecl-cluster control policy (drain, power-off, wake)."""

import pytest

from repro.cluster import ClusterController
from repro.hardware.cluster import (
    NodePowerState,
    homogeneous_cluster,
    mixed_cluster,
)
from repro.loadprofiles import constant_profile, spike_profile
from repro.sim import (
    RunConfiguration,
    SimulationRunner,
    registered_policies,
)
from repro.workloads import KeyValueWorkload, WorkloadVariant


def cluster_config(
    policy="ecl-cluster",
    duration_s=4.0,
    fraction=0.1,
    nodes=2,
    spec=None,
    **kwargs,
):
    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(duration_s=duration_s, fraction=fraction),
        policy=policy,
        seed=0,
        cluster=spec if spec is not None else homogeneous_cluster(nodes),
        **kwargs,
    )


class TestRegistration:
    def test_registered(self):
        assert "ecl-cluster" in registered_policies()

    def test_builds_cluster_controller(self):
        runner = SimulationRunner(cluster_config(duration_s=0.5))
        assert isinstance(runner.policy, ClusterController)
        assert runner.policy.planner.name == "consolidate"

    def test_annotations_delegate_to_inner_ecl(self):
        runner = SimulationRunner(cluster_config(duration_s=0.5))
        runner.run()
        assert runner.policy.annotate_sample() is not None


class TestNodeDrain:
    def test_low_load_powers_off_the_second_node(self):
        runner = SimulationRunner(cluster_config(duration_s=6.0))
        result = runner.run()
        policy = runner.policy
        machine = runner.machine
        engine = runner.engine
        assert policy.powered_off_nodes == frozenset({1})
        assert machine.node_power_state(1) is NodePowerState.OFF
        for sid in machine.node_sockets(1):
            assert sid in policy.drained_sockets
            assert not engine.hubs[sid].partition_ids
            assert not engine.socket_is_online(sid)
            assert machine.cstates.memory_is_vacated(sid)
        # Node 0 keeps all partitions and serves everything.
        assert machine.node_power_state(0) is NodePowerState.ON
        for sid in machine.node_sockets(0):
            assert engine.partitions.partitions_on_socket(sid)
        # The surviving node serves everything; only the run-end
        # in-flight tail (queries submitted on the final ticks) may be
        # outstanding when the clock stops.
        assert result.queries_submitted - result.queries_completed <= 2
        assert engine.pending_messages() <= 2

    def test_anchor_node_never_powers_off(self):
        # Near-zero load: even then, node 0 must stay on.
        runner = SimulationRunner(cluster_config(fraction=0.02))
        runner.run()
        assert 0 not in runner.policy.powered_off_nodes
        assert runner.machine.node_power_state(0) is NodePowerState.ON

    def test_mixed_cluster_parks_the_wimpy_satellites(self):
        runner = SimulationRunner(
            cluster_config(spec=mixed_cluster(3), duration_s=8.0)
        )
        runner.run()
        assert runner.policy.powered_off_nodes == frozenset({1, 2})

    def test_migrations_crossed_node_boundary(self):
        runner = SimulationRunner(cluster_config(duration_s=6.0))
        runner.run()
        machine = runner.machine
        crossings = [
            record
            for record in runner.engine.migration_log
            if machine.node_of_socket(record.source_socket)
            != machine.node_of_socket(record.target_socket)
        ]
        assert crossings

    def test_single_node_degrades_to_plain_ecl(self):
        # One node: nothing to pack toward, nothing to power off.
        runner = SimulationRunner(cluster_config(nodes=1, duration_s=3.0))
        runner.run()
        assert runner.policy.powered_off_nodes == frozenset()
        assert runner.policy.drained_sockets == frozenset()
        assert not runner.engine.migration_log


class TestWake:
    def test_load_spike_wakes_the_parked_node(self):
        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=spike_profile(duration_s=12.0),
            policy="ecl-cluster",
            seed=0,
            cluster=homogeneous_cluster(2, power_up_s=0.5),
        )
        runner = SimulationRunner(config)
        result = runner.run()
        machine = runner.machine
        # The idle floor parks node 1; the full-load burst must bring it
        # back: a boot was observed (power version advanced past the
        # initial off transition) and partitions spread back.
        log = runner.engine.migration_log
        spreads = [
            r
            for r in log
            if machine.node_of_socket(r.target_socket) == 1
        ]
        assert spreads, "no partitions returned to the woken node"
        assert result.queries_completed > 0

    def test_boot_latency_is_respected(self):
        spec = homogeneous_cluster(2, power_up_s=1.0)
        runner = SimulationRunner(
            cluster_config(spec=spec, duration_s=2.0, fraction=0.05)
        )
        runner.run()
        machine = runner.machine
        policy = runner.policy
        assert policy.powered_off_nodes == frozenset({1})
        # Wake it manually: the node must pass through BOOTING, and the
        # controller must not reactivate its sockets before settle.
        machine.power_on_node(1)
        assert machine.node_power_state(1) is NodePowerState.BOOTING
        policy.on_tick(machine.time_s, 0.002)
        assert policy.drained_sockets  # still parked mid-boot
        machine.step(1.5)
        policy.on_tick(machine.time_s, 0.002)
        assert machine.node_power_state(1) is NodePowerState.ON
        assert not policy.drained_sockets  # reactivated after settle


class TestMacroProtocol:
    @pytest.mark.parametrize("nodes", [1, 2])
    def test_macro_stepping_is_bit_identical(self, nodes):
        energies = []
        for macro in (True, False):
            runner = SimulationRunner(
                cluster_config(
                    nodes=nodes, duration_s=4.0, macro_step=macro
                )
            )
            result = runner.run()
            energies.append(
                (
                    result.total_energy_j,
                    result.queries_completed,
                    tuple(result.latencies_s),
                )
            )
        assert energies[0] == energies[1]

    def test_boot_spans_but_refuses_replays(self):
        """A booting node folds into spans; only in-span replays refuse.

        The machine's event horizon caps every span at the boot
        deadline, so ``macro_view`` may offer a span — the settle tick
        still runs live.  ``macro_step_tick`` must refuse: the replay
        path never consults the machine horizon, so a replayed tick on
        the deadline would settle the node one tick late.
        """
        runner = SimulationRunner(cluster_config(duration_s=2.0))
        runner.run()
        policy = runner.policy
        machine = runner.machine
        machine.power_on_node(1)
        assert machine.node_power_state(1) is NodePowerState.BOOTING
        assert policy.macro_view(machine.time_s, 0.002) is not None
        assert not policy.macro_step_tick(machine.time_s, 0.002)
        # The boot deadline bounds the machine's own span horizon.
        deadline = machine.time_s + machine.cluster.nodes[1].power_up_s
        assert machine.next_internal_event_s() <= deadline


class TestEnergy:
    def test_cluster_policy_beats_plain_ecl_on_the_fleet(self):
        results = {}
        for policy in ("ecl", "ecl-cluster"):
            runner = SimulationRunner(
                cluster_config(policy=policy, duration_s=6.0)
            )
            results[policy] = runner.run()
        assert (
            results["ecl-cluster"].total_energy_j
            < results["ecl"].total_energy_j
        )
        # The energy saving must not come out of throughput.
        assert (
            results["ecl-cluster"].queries_completed
            >= results["ecl"].queries_completed
        )
