"""Meta calibration: how fast can the ECL reconfigure and measure? (§5.1)

Because hardware differs, the ECL detects two platform constants once at
startup:

* **apply time** — how long after writing the DVFS/C-state knobs the new
  configuration is actually in effect.  C/P-state transitions cost only
  microseconds, so even a 1 ms budget measures accurately (Fig. 12).
* **measure time** — how long a RAPL window must be for the power reading
  to be trustworthy.  Short windows are dominated by read noise and
  post-switch disturbance; the paper identifies 100 ms as the best
  accuracy/speed trade-off.

The calibrator takes a reference measurement with a generous window and
then shrinks the times step by step while watching the deviation from the
reference, alternating between the highest configuration (all cores at
maximum frequency) and the lowest (one core at minimum) exactly as the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlError
from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad, WorkloadCharacteristics
from repro.hardware.rapl import RaplDomain
from repro.profiles.configuration import Configuration

#: Candidate times, largest first (seconds).
MEASURE_CANDIDATES = (1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001)
APPLY_CANDIDATES = (0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001)

#: A calibration workload: steady compute so power is configuration-bound.
CALIBRATION_CHARACTERISTICS = WorkloadCharacteristics(
    name="calibration", base_cpi=0.5, ht_speedup=1.2
)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the meta calibration.

    Attributes:
        apply_time_s: chosen configuration-apply settle time.
        measure_time_s: chosen counter-measurement window.
        measure_deviation: ``window -> relative deviation`` from reference.
        apply_deviation: ``settle -> relative deviation`` from reference.
    """

    apply_time_s: float
    measure_time_s: float
    measure_deviation: dict[float, float]
    apply_deviation: dict[float, float]


class MetaCalibrator:
    """Runs the startup calibration against one socket of a machine."""

    def __init__(
        self,
        machine: Machine,
        socket_id: int = 0,
        deviation_threshold: float = 0.02,
        repetitions: int = 9,
    ):
        if deviation_threshold <= 0:
            raise ControlError(
                f"deviation threshold must be > 0, got {deviation_threshold}"
            )
        if repetitions < 1:
            raise ControlError(f"repetitions must be >= 1, got {repetitions}")
        self.machine = machine
        self.socket_id = socket_id
        self.deviation_threshold = deviation_threshold
        self.repetitions = repetitions
        self._highest, self._lowest = self._endpoint_configurations()

    def _endpoint_configurations(self) -> tuple[Configuration, Configuration]:
        """(all cores at max sustained clock, one core at minimum)."""
        topology = self.machine.topology
        params = self.machine.params_for(self.socket_id)
        socket = topology.socket(self.socket_id)
        all_threads = set(socket.thread_ids())
        highest = Configuration.build(
            self.socket_id,
            all_threads,
            {c.core_id: params.core_nominal_ghz for c in socket.cores},
            params.uncore_max_ghz,
        )
        first_core = socket.cores[0]
        lowest = Configuration.build(
            self.socket_id,
            {first_core.threads[0].global_id},
            {first_core.core_id: params.core_min_ghz},
            params.uncore_min_ghz,
        )
        return highest, lowest

    # -- measurement primitive --------------------------------------------------

    def _measure_power(
        self, configuration: Configuration, settle_s: float, window_s: float
    ) -> float:
        """Apply a configuration, settle, and measure power over a window."""
        machine = self.machine
        machine.set_socket_load(
            self.socket_id,
            SocketLoad(
                characteristics=CALIBRATION_CHARACTERISTICS,
                demand_instructions_per_s=None,
            ),
        )
        configuration.apply(machine)
        machine.step(max(settle_s, 1e-4))
        counter = machine.rapl_counter(self.socket_id, RaplDomain.PACKAGE)
        start = counter.read()
        machine.step(window_s)
        end = counter.read()
        return counter.window_power_w(start, end)

    def _power_gaps(self, settle_s: float, window_s: float) -> list[float]:
        """High-minus-low power gaps over alternating applications."""
        gaps = []
        for i in range(self.repetitions):
            high = self._measure_power(self._highest, settle_s, window_s)
            low = self._measure_power(self._lowest, settle_s, window_s)
            if i == 0:
                continue  # discard the warm-up pair
            gaps.append(high - low)
        return gaps

    def _alternating_power_delta(self, settle_s: float, window_s: float) -> float:
        """Average high-minus-low power gap over alternating applications."""
        gaps = self._power_gaps(settle_s, window_s)
        return sum(gaps) / max(1, len(gaps))

    def _mean_abs_deviation(
        self, settle_s: float, window_s: float, reference: float
    ) -> float:
        """Mean per-measurement relative error against the reference gap.

        Judging candidates by the *per-measurement* error (not the error
        of the averaged gap) is what matters for the ECL: every profile
        measurement at runtime is a single window, not an average.
        """
        gaps = self._power_gaps(settle_s, window_s)
        return sum(abs(g - reference) for g in gaps) / (
            max(1, len(gaps)) * reference
        )

    # -- calibration ----------------------------------------------------------------

    def run(self) -> CalibrationResult:
        """Execute the full meta calibration (mutates machine time/state)."""
        reference_settle = APPLY_CANDIDATES[0]
        reference_window = MEASURE_CANDIDATES[0]
        reference = self._alternating_power_delta(
            reference_settle, reference_window
        )
        if reference <= 0:
            raise ControlError("calibration reference gap is non-positive")

        # Decrease step by step; stop shrinking once accuracy degrades
        # (the curves for Fig. 12 still record every probed candidate).
        measure_deviation: dict[float, float] = {}
        measure_time = reference_window
        for window in MEASURE_CANDIDATES:
            deviation = self._mean_abs_deviation(
                reference_settle, window, reference
            )
            measure_deviation[window] = deviation
            if deviation <= self.deviation_threshold:
                measure_time = window
            else:
                break

        # The apply sweep measures with the *generous* reference window so
        # that only the settle time under test — not window read noise —
        # drives the deviation.
        apply_deviation: dict[float, float] = {}
        apply_time = reference_settle
        for settle in APPLY_CANDIDATES:
            deviation = self._mean_abs_deviation(
                settle, reference_window, reference
            )
            apply_deviation[settle] = deviation
            if deviation <= self.deviation_threshold:
                apply_time = settle
            else:
                break

        return CalibrationResult(
            apply_time_s=apply_time,
            measure_time_s=measure_time,
            measure_deviation=measure_deviation,
            apply_deviation=apply_deviation,
        )
