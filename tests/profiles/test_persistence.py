"""Tests for energy-profile persistence."""

import json

import pytest

from repro.errors import ProfileError
from repro.profiles.evaluate import build_profile
from repro.profiles.persistence import (
    FORMAT_VERSION,
    configuration_from_dict,
    configuration_to_dict,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.workloads.micro import COMPUTE_BOUND


class TestConfigurationRoundtrip:
    def test_roundtrip(self, machine):
        from repro.profiles.configuration import Configuration

        original = Configuration.build(1, {13, 37}, {1: 1.9, 2: 2.6}, 2.1)
        restored = configuration_from_dict(configuration_to_dict(original))
        assert restored == original

    def test_malformed_rejected(self):
        with pytest.raises(ProfileError):
            configuration_from_dict({"socket_id": 0})


class TestProfileRoundtrip:
    @pytest.fixture
    def profile(self, machine):
        return build_profile(machine, 0, COMPUTE_BOUND)

    def test_roundtrip_preserves_decisions(self, profile):
        restored = profile_from_dict(profile_to_dict(profile), mark_stale=False)
        assert len(restored) == len(profile)
        assert restored.socket_id == profile.socket_id
        assert restored.os_idle_power_w == pytest.approx(
            profile.os_idle_power_w
        )
        assert (
            restored.most_efficient().configuration
            == profile.most_efficient().configuration
        )
        assert restored.peak_performance() == pytest.approx(
            profile.peak_performance()
        )

    def test_loaded_entries_marked_stale_by_default(self, profile):
        restored = profile_from_dict(profile_to_dict(profile))
        assert len(restored.stale_entries()) == len(restored)
        # ...but the measurements themselves are preserved for decisions.
        assert restored.coverage() == 1.0

    def test_file_roundtrip(self, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        save_profile(profile, path)
        restored = load_profile(path, mark_stale=False)
        assert (
            restored.most_efficient().configuration
            == profile.most_efficient().configuration
        )

    def test_snapshot_is_plain_json(self, profile, tmp_path):
        path = str(tmp_path / "profile.json")
        save_profile(profile, path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["format_version"] == FORMAT_VERSION
        assert len(data["entries"]) == len(profile)

    def test_version_check(self, profile):
        data = profile_to_dict(profile)
        data["format_version"] = 999
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ProfileError):
            profile_from_dict({"format_version": FORMAT_VERSION, "entries": []})

    def test_missing_file(self, tmp_path):
        with pytest.raises(ProfileError):
            load_profile(str(tmp_path / "nope.json"))

    def test_unevaluated_entries_survive(self, machine):
        from repro.profiles.generator import ConfigurationGenerator
        from repro.profiles.profile import EnergyProfile

        generator = ConfigurationGenerator(machine.topology, machine.params, 0)
        sparse = EnergyProfile(generator.generate())
        restored = profile_from_dict(profile_to_dict(sparse))
        assert len(restored) == len(sparse)
        assert restored.coverage() == 0.0
