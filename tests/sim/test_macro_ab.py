"""Macro-stepping A/B bit-identity across every policy and arrival mode.

The macro-tick core promises that ``macro_step=True`` is purely an
execution strategy: every observable of a run — energy, query counts,
latencies, samples, machine clocks and counters — must be *bit-identical*
to the per-tick path.  These tests A/B every registered control policy
under both arrival modes (deterministic and Poisson), plus the
consolidation policy with a forced migration wave in flight, and compare
the full result surface with ``==`` (no tolerances).
"""

import pytest

from repro.loadprofiles import constant_profile, spike_profile
from repro.placement import MigrationRequest, round_robin_assignment
from repro.sim import RunConfiguration, SimulationRunner, registered_policies
from repro.workloads import KeyValueWorkload, WorkloadVariant


def _run(policy, *, macro, poisson=False, profile=None, tweak=None):
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=profile
        if profile is not None
        else spike_profile(duration_s=3.0),
        policy=policy,
        seed=5,
        macro_step=macro,
        poisson_arrivals=poisson,
    )
    runner = SimulationRunner(config)
    if tweak is not None:
        tweak(runner)
    result = runner.run()
    return result, runner


def _assert_identical(on, off):
    """Full-surface bitwise comparison of two RunResults."""
    assert on.total_energy_j == off.total_energy_j
    assert on.queries_submitted == off.queries_submitted
    assert on.queries_completed == off.queries_completed
    assert on.latencies_s == off.latencies_s
    assert on.duration_s == off.duration_s
    assert len(on.samples) == len(off.samples)
    for a, b in zip(on.samples, off.samples):
        assert a == b


class TestEveryPolicyBothArrivalModes:
    @pytest.mark.parametrize("policy", sorted(registered_policies()))
    @pytest.mark.parametrize("poisson", [False, True])
    def test_macro_on_off_identity(self, policy, poisson):
        on, runner_on = _run(policy, macro=True, poisson=poisson)
        off, runner_off = _run(policy, macro=False, poisson=poisson)
        _assert_identical(on, off)
        # The machine itself (time fold, energy counters) must agree too.
        assert runner_on.machine.time_s == runner_off.machine.time_s
        assert (
            runner_on.machine.true_total_energy_j()
            == runner_off.machine.true_total_energy_j()
        )
        # Per-tick mode must never have macro-stepped.
        assert runner_off.macro_ticks_skipped == 0

    def test_spike_profile_actually_produces_spans(self):
        """The identity tests above are vacuous if no span is ever taken:
        pin that the macro run really skipped ticks for at least the
        policies with an unbounded steady horizon."""
        _, runner = _run("baseline", macro=True)
        assert runner.macro_ticks_skipped > 0
        assert runner.macro_spans > 0


class _MoveBackPlanner:
    """Pack socket 1 onto socket 0, then demand socket 1 back."""

    name = "move-back"

    def __init__(self):
        self.phase = 0

    def initial_assignment(self, partition_count, socket_ids):
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view):
        self.phase += 1
        if self.phase == 1:
            return [
                MigrationRequest(pid, 0, reason="pack")
                for pid in view.socket(1).partition_ids
            ]
        return [MigrationRequest(0, 1, reason="spread")]


class TestConsolidateWithMigrationsInFlight:
    @pytest.mark.parametrize("poisson", [False, True])
    def test_macro_identity_through_drain_and_wake(self, poisson):
        def tweak(runner):
            runner.policy.planner = _MoveBackPlanner()
            runner.policy.cooldown_intervals = 0

        profile = constant_profile(duration_s=4.0, fraction=0.18)
        on, runner_on = _run(
            "ecl-consolidate",
            macro=True,
            poisson=poisson,
            profile=profile,
            tweak=tweak,
        )
        off, runner_off = _run(
            "ecl-consolidate",
            macro=False,
            poisson=poisson,
            profile=profile,
            tweak=tweak,
        )
        _assert_identical(on, off)
        # The scenario must really have migrated away and back, and the
        # macro path must still have found spans around the waves.
        assert runner_on.engine.migration_log
        assert runner_on.policy.drained_sockets == frozenset()
        assert runner_on.macro_ticks_skipped > 0
        assert (
            len(runner_on.engine.migration_log)
            == len(runner_off.engine.migration_log)
        )
