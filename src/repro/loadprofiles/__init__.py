"""Load profiles: queries-per-second curves over time.

"Additionally, we use load profiles that define the number of queries per
second sent to the database system over time, because energy efficiency
depends on the load" (paper §6).  Profiles yield a *fraction* of the
workload's nominal peak rate, so the same profile drives every benchmark.

* :mod:`repro.loadprofiles.spike` — the synthetic profile covering the
  full load range including a deliberate overload phase (Fig. 13);
* :mod:`repro.loadprofiles.twitter` — a deterministic replica of the
  2-hour Twitter load trace compressed to 3 minutes: diurnal drift with
  sudden spikes and frequent alternation (Fig. 14);
* :mod:`repro.loadprofiles.synthetic` — constant/step/sine helpers for
  tests and ablation studies;
* :mod:`repro.loadprofiles.replay` — exact replay of recorded arrival
  streams (telemetry traces, CSV arrival curves);
* :mod:`repro.loadprofiles.registry` — the name → factory table behind
  ``--profile``; out-of-tree profiles hook in via
  :func:`register_profile`.
"""

from repro.loadprofiles.base import LoadProfile, SegmentProfile
from repro.loadprofiles.registry import (
    ProfileFactory,
    ProfileInfo,
    get_profile,
    make_profile,
    register_profile,
    registered_profiles,
    unregister_profile,
)
from repro.loadprofiles.replay import TraceReplayProfile, load_replay_trace
from repro.loadprofiles.spike import spike_profile
from repro.loadprofiles.twitter import twitter_day_profile, twitter_profile
from repro.loadprofiles.synthetic import constant_profile, sine_profile, step_profile

__all__ = [
    "LoadProfile",
    "SegmentProfile",
    "TraceReplayProfile",
    "load_replay_trace",
    "ProfileFactory",
    "ProfileInfo",
    "register_profile",
    "unregister_profile",
    "registered_profiles",
    "get_profile",
    "make_profile",
    "spike_profile",
    "twitter_profile",
    "twitter_day_profile",
    "constant_profile",
    "step_profile",
    "sine_profile",
]
