"""Hardware configurations and their measurements (paper §4.1).

A configuration is expressed as

    c = ({hardware threads}, {(core, f_core)}, f_uncore)

for one socket.  Configurations are *workload-agnostic*; evaluating one
under a concrete workload enriches it with (power, performance score,
energy efficiency) — kept separately in
:class:`ConfigurationMeasurement` so the same configuration can carry
different measurements in different profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.hardware.machine import Machine


@dataclass(frozen=True)
class Configuration:
    """One socket-level hardware state.

    Attributes:
        socket_id: socket this configuration applies to.
        active_threads: global hardware-thread ids to keep unparked.
        core_frequencies: ``core_id -> GHz`` for the *active* physical
            cores; inactive cores are implicitly at the minimum P-state.
        uncore_ghz: pinned uncore frequency.
    """

    socket_id: int
    active_threads: frozenset[int]
    core_frequencies: tuple[tuple[int, float], ...]
    uncore_ghz: float

    @staticmethod
    def build(
        socket_id: int,
        active_threads: frozenset[int] | set[int],
        core_frequencies: Mapping[int, float],
        uncore_ghz: float,
    ) -> "Configuration":
        """Normalize inputs into a hashable configuration."""
        return Configuration(
            socket_id=socket_id,
            active_threads=frozenset(active_threads),
            core_frequencies=tuple(sorted(core_frequencies.items())),
            uncore_ghz=uncore_ghz,
        )

    @staticmethod
    def idle(socket_id: int, uncore_ghz: float) -> "Configuration":
        """The idle configuration: every thread parked."""
        return Configuration(
            socket_id=socket_id,
            active_threads=frozenset(),
            core_frequencies=(),
            uncore_ghz=uncore_ghz,
        )

    # -- derived facts ------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        """True when no hardware thread is active."""
        return not self.active_threads

    @property
    def thread_count(self) -> int:
        """Number of active hardware threads."""
        return len(self.active_threads)

    @property
    def core_count(self) -> int:
        """Number of active physical cores."""
        return len(self.core_frequencies)

    @property
    def average_core_ghz(self) -> float:
        """Mean frequency of the active cores (0.0 when idle)."""
        if not self.core_frequencies:
            return 0.0
        return sum(f for _, f in self.core_frequencies) / len(self.core_frequencies)

    def frequency_of_core(self, core_id: int) -> float | None:
        """Frequency of one active core, or None if the core is inactive."""
        for cid, freq in self.core_frequencies:
            if cid == core_id:
                return freq
        return None

    # -- application ----------------------------------------------------------

    def validate_against(self, machine: Machine) -> None:
        """Check the configuration is applicable to ``machine``.

        Raises:
            ConfigurationError: on foreign threads, unknown cores, invalid
                P-states, or threads on cores without a frequency.
        """
        topology = machine.topology
        socket = topology.socket(self.socket_id)
        own = set(socket.thread_ids())
        foreign = set(self.active_threads) - own
        if foreign:
            raise ConfigurationError(
                f"threads {sorted(foreign)} not on socket {self.socket_id}"
            )
        machine.frequency.uncore_ladder_for(self.socket_id).validate(
            self.uncore_ghz
        )
        freq_map = dict(self.core_frequencies)
        core_ladder = machine.frequency.core_ladder_for(self.socket_id)
        for core_id, freq in freq_map.items():
            if not 0 <= core_id < socket.core_count:
                raise ConfigurationError(
                    f"unknown core {core_id} on socket {self.socket_id}"
                )
            core_ladder.validate(freq)
        for tid in self.active_threads:
            core = topology.core_of(tid)
            if core.core_id not in freq_map:
                raise ConfigurationError(
                    f"thread {tid} active but core {core.core_id} has no frequency"
                )

    def apply(self, machine: Machine) -> None:
        """Drive ``machine``'s knobs into this configuration.

        Parks/unparks threads, sets active cores to their frequencies and
        inactive cores to the minimum P-state, and pins the uncore clock.
        """
        # Validation depends only on (self, machine topology/ladders) —
        # both immutable — so each configuration is checked once per
        # machine, not on every duty-cycle re-application.
        if self not in machine.validated_configurations:
            self.validate_against(machine)
            machine.validated_configurations.add(self)
        now = machine.time_s
        machine.apply_socket_threads(self.socket_id, set(self.active_threads))
        freq_map = dict(self.core_frequencies)
        minimum = machine.frequency.core_ladder_for(self.socket_id).minimum
        socket = machine.topology.socket(self.socket_id)
        machine.frequency.set_socket_core_frequencies(
            self.socket_id,
            {
                core.core_id: freq_map.get(core.core_id, minimum)
                for core in socket.cores
            },
            now,
        )
        machine.frequency.set_uncore_frequency(self.socket_id, self.uncore_ghz)

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"8t@2.1GHz/u1.2GHz"``."""
        if self.is_idle:
            return "idle"
        return (
            f"{self.thread_count}t@{self.average_core_ghz:.1f}GHz/"
            f"u{self.uncore_ghz:.1f}GHz"
        )


@dataclass(frozen=True)
class ConfigurationMeasurement:
    """Power and performance of one configuration under one workload.

    Attributes:
        power_w: socket power (RAPL package + DRAM domains).
        performance_score: instructions retired per second on the socket.
        measured_at_s: simulation time of the measurement.
    """

    power_w: float
    performance_score: float
    measured_at_s: float

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ConfigurationError(f"power must be > 0, got {self.power_w}")
        if self.performance_score < 0:
            raise ConfigurationError(
                f"performance score must be >= 0, got {self.performance_score}"
            )

    @property
    def energy_efficiency(self) -> float:
        """Performance per watt (the paper's efficiency metric, W⁻¹)."""
        return self.performance_score / self.power_w

    def blended_with(
        self, other: "ConfigurationMeasurement", weight: float
    ) -> "ConfigurationMeasurement":
        """EWMA-style blend used by online profile adaptation."""
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(f"blend weight must be in [0,1], got {weight}")
        return ConfigurationMeasurement(
            power_w=self.power_w * (1 - weight) + other.power_w * weight,
            performance_score=self.performance_score * (1 - weight)
            + other.performance_score * weight,
            measured_at_s=max(self.measured_at_s, other.measured_at_s),
        )
