"""The Energy-Control Loop (ECL) — the paper's core contribution (§5).

Hierarchical organization:

* one **socket-level ECL** per processor
  (:mod:`repro.ecl.socket_ecl`), combining

  - the *utilization controller* (:mod:`repro.ecl.utilization`): derives
    the demanded performance level from worker utilization — exact scaling
    below full utilization, exponential discovery at 100 %;
  - the *race-to-idle controller* (:mod:`repro.ecl.rti`): duty-cycles
    between the most energy-efficient configuration and idle in the
    under-utilization zone, with cross-socket idle synchronization;
  - *energy-profile maintenance* (:mod:`repro.ecl.adaptation`): online
    EWMA updates of applied configurations plus multiplexed re-evaluation
    of stale ones after drift;

* one **system-level ECL** (:mod:`repro.ecl.system_ecl`) that watches the
  average query latency against the user-defined soft limit and
  broadcasts the estimated time-to-violation to the socket ECLs;

* a one-time **meta calibration** (:mod:`repro.ecl.calibration`) that
  discovers how quickly configurations can be applied (~1 ms) and how
  long counter measurements must be to be trustworthy (~100 ms, Fig. 12).

:class:`repro.ecl.controller.EnergyControlLoop` wires everything to a
:class:`~repro.dbms.engine.DatabaseEngine`.
"""

from repro.ecl.calibration import CalibrationResult, MetaCalibrator
from repro.ecl.utilization import UtilizationController
from repro.ecl.rti import RtiController, RtiPlan
from repro.ecl.adaptation import ProfileMaintainer
from repro.ecl.system_ecl import SystemEcl
from repro.ecl.socket_ecl import EclParameters, SocketEcl
from repro.ecl.controller import EnergyControlLoop

__all__ = [
    "CalibrationResult",
    "MetaCalibrator",
    "UtilizationController",
    "RtiController",
    "RtiPlan",
    "ProfileMaintainer",
    "SystemEcl",
    "EclParameters",
    "SocketEcl",
    "EnergyControlLoop",
]
