"""Piecewise time-varying signals — the scenario-engine substrate.

A :class:`Signal` is a scalar function of simulated time with the three
capabilities the harness needs:

* ``value(t)`` — the scalar read a control policy makes on a live tick;
* ``values(times)`` — the vectorized read the carbon/cost accounting
  and the load-generator pre-draw fold over (the hot path: one call per
  pre-drawn block or committed macro span, never one per tick);
* ``next_change_s(t)`` — the first time strictly after ``t`` at which
  the signal's piecewise description changes (a step boundary, a linear
  knot), ``inf`` for never.  The macro-stepping runner caps span
  horizons at this time the same way it caps at boot deadlines, so the
  tick on which a signal changes always runs live.

Scalar and vectorized reads must agree: ``value`` defaults to a
one-element ``values`` call, and classes overriding both keep an
explicit rounding contract (:class:`PiecewiseLinearSignal` carries the
historical dual-path numerics of ``SegmentProfile`` — exact-formula
scalar interpolation, ``np.interp`` vectors — because run goldens pin
both paths bit-for-bit).
"""

from __future__ import annotations

import abc
import bisect
import csv
import json
import os
from pathlib import Path

import numpy as np

from repro.errors import SimulationError


class Signal(abc.ABC):
    """A piecewise time-varying scalar over simulated seconds."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Signal name as used in reports ("carbon-diurnal", ...)."""

    @abc.abstractmethod
    def values(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized sample at each time (float64 in, float64 out)."""

    def value(self, t_s: float) -> float:
        """Scalar sample at ``t_s`` — agrees with :meth:`values` by
        construction unless a subclass overrides both under a documented
        rounding contract."""
        return float(self.values(np.array([t_s], dtype=np.float64))[0])

    def next_change_s(self, t_s: float) -> float:
        """First time strictly after ``t_s`` the description changes.

        ``inf`` means the signal is analytically constant from ``t_s``
        on (or changes continuously with no breakpoints to land live
        ticks on); the macro runner then applies no extra cap.
        """
        return float("inf")

    def average(self, t0_s: float, t1_s: float, samples: int = 512) -> float:
        """Midpoint-sampled time average over ``[t0_s, t1_s]``.

        Reference level for relative comparisons (e.g. "is this hour
        dirtier than the run average"); deterministic, not an exact
        integral.
        """
        if samples <= 0:
            raise SimulationError(f"samples must be > 0, got {samples}")
        if t1_s <= t0_s:
            return self.value(t0_s)
        step = (t1_s - t0_s) / samples
        mids = t0_s + (np.arange(samples, dtype=np.float64) + 0.5) * step
        return float(self.values(mids).mean())


class ConstantSignal(Signal):
    """A single value for all time."""

    def __init__(self, value: float, name: str = "constant"):
        self._value = float(value)
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def values(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=np.float64)
        return np.full(times_s.shape, self._value, dtype=np.float64)

    def value(self, t_s: float) -> float:
        return self._value


class StepSignal(Signal):
    """Piecewise-constant, left-closed: ``value = v_i`` on ``[t_i, t_{i+1})``.

    Before the first control point the first value holds (signals like a
    grid carbon curve have no natural zero); after the last point the
    last value holds forever.
    """

    def __init__(self, points: list[tuple[float, float]], name: str = "step"):
        if not points:
            raise SimulationError("step signal needs >= 1 control point")
        times = [float(t) for t, _ in points]
        if times != sorted(times):
            raise SimulationError("control points must be time-ordered")
        if len(set(times)) != len(times):
            raise SimulationError("control points must have distinct times")
        self._name = name
        self._times = np.array(times, dtype=np.float64)
        self._levels = np.array([v for _, v in points], dtype=np.float64)

    @property
    def name(self) -> str:
        return self._name

    def values(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=np.float64)
        idx = np.searchsorted(self._times, times_s, side="right") - 1
        return self._levels[np.clip(idx, 0, len(self._levels) - 1)]

    def value(self, t_s: float) -> float:
        i = int(np.searchsorted(self._times, t_s, side="right")) - 1
        return float(self._levels[min(max(i, 0), len(self._levels) - 1)])

    def next_change_s(self, t_s: float) -> float:
        i = int(np.searchsorted(self._times, t_s, side="right"))
        if i >= len(self._times):
            return float("inf")
        return float(self._times[i])


class PiecewiseLinearSignal(Signal):
    """Linear interpolation through time-ordered control points.

    Carries the exact dual-path numerics the ``SegmentProfile`` load
    profiles have always had (and which the run goldens pin through two
    independent consumers): the scalar :meth:`value` interpolates with
    the explicit ``v0*(1-w) + v1*w`` formula, while the vectorized
    :meth:`values` uses ``np.interp`` — the two agree up to float
    rounding, and each is bit-stable on its own path.

    ``outside`` selects the out-of-range behaviour: a float (load
    profiles use ``0.0``) is returned verbatim outside the control-point
    range; ``None`` (the default, for environment curves) clamps to the
    edge values.
    """

    def __init__(
        self,
        points: list[tuple[float, float]],
        name: str = "piecewise-linear",
        outside: float | None = None,
    ):
        if len(points) < 2:
            raise SimulationError(
                "piecewise-linear signal needs >= 2 control points"
            )
        times = [t for t, _ in points]
        if times != sorted(times):
            raise SimulationError("control points must be time-ordered")
        self._name = name
        self._points = [(float(t), float(v)) for t, v in points]
        self._times = times
        self._xs = np.array(times, dtype=np.float64)
        self._vs = np.array([v for _, v in points], dtype=np.float64)
        self.outside = outside

    @property
    def name(self) -> str:
        return self._name

    @property
    def start_s(self) -> float:
        return self._points[0][0]

    @property
    def end_s(self) -> float:
        return self._points[-1][0]

    def value(self, t_s: float) -> float:
        times = self._times
        points = self._points
        if t_s < times[0] or t_s > times[-1]:
            if self.outside is not None:
                return self.outside
            return points[0][1] if t_s < times[0] else points[-1][1]
        i = bisect.bisect_right(times, t_s)
        if i >= len(points):
            return points[-1][1]
        if i == 0:
            return points[0][1]
        (t0, v0), (t1, v1) = points[i - 1], points[i]
        span = t1 - t0
        if span <= 0:
            return v1
        w = (t_s - t0) / span
        return v0 * (1.0 - w) + v1 * w

    def values(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=np.float64)
        left = self._vs[0] if self.outside is None else self.outside
        right = self._vs[-1] if self.outside is None else self.outside
        return np.interp(times_s, self._xs, self._vs, left=left, right=right)

    def next_change_s(self, t_s: float) -> float:
        # Between knots the value changes continuously but the *piece*
        # does not; breakpoints are where live ticks must land (policies
        # re-read scalars there, the accounting always folds exactly).
        i = int(np.searchsorted(self._xs, t_s, side="right"))
        if i >= len(self._xs):
            return float("inf")
        return float(self._xs[i])


# -- file loaders -----------------------------------------------------------


def _rows_from_csv(path: Path) -> list[tuple[float, float]]:
    rows: list[tuple[float, float]] = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            if not row or not any(cell.strip() for cell in row):
                continue
            try:
                rows.append((float(row[0]), float(row[1])))
            except (ValueError, IndexError):
                if lineno == 1:
                    continue  # header row ("time_s,value")
                raise SimulationError(
                    f"{path}:{lineno}: expected 'time_s,value' row, got {row!r}"
                ) from None
    return rows


def _rows_from_jsonl(path: Path) -> list[tuple[float, float]]:
    rows: list[tuple[float, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise SimulationError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            t = record.get("time_s", record.get("t"))
            v = record.get("value")
            if t is None or v is None:
                raise SimulationError(
                    f"{path}:{lineno}: need 'time_s' (or 't') and 'value'"
                )
            rows.append((float(t), float(v)))
    return rows


def load_signal(
    path: "str | os.PathLike[str]", name: str | None = None
) -> StepSignal:
    """Load a step signal from a ``time_s,value`` CSV or JSONL file.

    Grid traces (carbon intensity, spot prices) publish as sampled
    series; each sample holds until the next, hence a
    :class:`StepSignal`.  The format is picked by suffix (``.jsonl`` /
    ``.ndjson`` parse as JSON lines, everything else as CSV).

    Raises:
        SimulationError: unreadable file, malformed rows, or no data.
    """
    target = Path(path)
    if not target.is_file():
        raise SimulationError(f"no signal trace at {target}")
    if target.suffix.lower() in (".jsonl", ".ndjson"):
        rows = _rows_from_jsonl(target)
    else:
        rows = _rows_from_csv(target)
    if not rows:
        raise SimulationError(f"{target}: no (time, value) rows")
    return StepSignal(rows, name=name or target.stem)
