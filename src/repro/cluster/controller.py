"""The ``ecl-cluster`` policy: per-node ECL plus whole-node power-off.

``ecl-consolidate`` showed the single-machine endgame: drain a socket's
partitions away and the package falls into sleep.  On a cluster the same
move goes one step further — once *every* socket of a node is drained,
the node itself can be powered off, dropping it to the residual wattage
of its standby circuitry instead of the sum of its package-sleep floors.
This controller composes three layers:

* the full :class:`~repro.ecl.controller.EnergyControlLoop` runs
  underneath, one socket-level loop per socket across all nodes, exactly
  as on a single machine;
* a :class:`~repro.placement.policy.ConsolidatePlacement` planner runs
  at **node granularity**: each node is presented as one aggregate
  "socket" (mean utilization, summed backlog, union of partitions), so
  its pack plan drains the highest-numbered node first — socket ids are
  node-major, so this empties whole nodes, never stripes across them —
  and its spread plan targets the first empty node when load spikes.
  Node utilization is demand relative to **full** capacity (the ECL
  utilization scaled by each socket loop's applied-capability
  fraction): the raw signal rides the ECL setpoint at any load once the
  loop has trimmed capacity to match, which would read as permanent
  overload and wake nodes the demand cannot fill;
* node-level migration requests are translated to concrete sockets
  (round-robin over the target node's sockets) and executed through the
  engine's quiesce → transfer → resume migration protocol, paying the
  inter-node network cost for every byte that crosses a node boundary.

Draining a node parks each of its sockets the way ``ecl-consolidate``
does (intake redirected, threads parked, socket loop stood down, memory
vacated) and then calls :meth:`~repro.hardware.machine.Machine.
power_off_node`.  Waking is asymmetric: a powered-off node must first
boot (:meth:`power_on_node`, modeled power-up latency at boot wattage)
before its sockets can be reactivated and partitions migrated back, so a
wake spans several control ticks — power-on, boot settle, socket
reactivation, then the next planning round's spread migrations.  A
freshly reactivated node is still empty until that round runs, so it is
protected from re-parking until a replan has seen it live — without
this the settle pass would power it straight back off and the wake
would never take.

Node 0 is the anchor: it is never drained, so the cluster always has an
online intake path (and on the ``mixed`` preset the anchor is the brawny
node, matching the wimpy/brawny deployment the preset models).

Macro protocol: spans are refused while migrations are in flight, while
any node is booting or awaiting reactivation, and while a drained node
awaits its power-off — all of these advance state tick-by-tick.
Otherwise the inner ECL's horizon is tightened by the next planning
check, so the controller contributes its own ``macro_horizon_s``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.cluster import NodePowerState
from repro.placement import (
    ConsolidatePlacement,
    MigrationRequest,
    PlacementView,
    SocketView,
)
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.dbms.engine import DatabaseEngine
    from repro.ecl.controller import EnergyControlLoop
    from repro.sim.runner import RunConfiguration


#: The anchor node: never drained, so intake always has a live target.
ANCHOR_NODE = 0


class ClusterController:
    """ECL everywhere + node-granular consolidation and power-off."""

    def __init__(
        self,
        engine: "DatabaseEngine",
        inner: "EnergyControlLoop",
        planner: ConsolidatePlacement | None = None,
        check_interval_s: float | None = None,
    ):
        self.engine = engine
        self.machine = engine.machine
        self.inner = inner
        #: Node-granularity planner.  Always consolidate-shaped: packing
        #: onto few nodes is the point; the run's socket-level placement
        #: still governs the initial assignment.
        self.planner = planner or ConsolidatePlacement()
        self.check_interval_s = check_interval_s or inner.params.interval_s
        #: First check one full interval in, when utilization data exists.
        self._next_check_s = self.check_interval_s
        #: Same post-migration planning pause as ``ecl-consolidate``.
        self.cooldown_intervals = 2
        #: Sockets currently parked because their node is drained.
        self._drained: set[int] = set()
        #: Nodes whose sockets just reactivated after a boot, protected
        #: from re-parking until a planning round has seen them live.
        #: Without this a node woken for a spread is still empty when
        #: the (cooldown-delayed) replan comes around, so ``_settle``
        #: would park it right back and the wake would never take.
        self._waking: set[int] = set()
        #: Why :meth:`macro_view` last refused a span (telemetry).
        self.macro_cut: str = ""

    @classmethod
    def build(
        cls, engine: "DatabaseEngine", config: "RunConfiguration"
    ) -> "ClusterController":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        # Imported lazily: repro.ecl.controller itself imports sim modules.
        from repro.ecl.controller import EnergyControlLoop

        inner = EnergyControlLoop.build(engine, config)
        return cls(engine, inner)

    # -- introspection ------------------------------------------------------

    @property
    def drained_sockets(self) -> frozenset[int]:
        """Sockets parked because their node is drained or powered off."""
        return frozenset(self._drained)

    @property
    def powered_off_nodes(self) -> frozenset[int]:
        """Nodes currently powered off by this controller."""
        return frozenset(
            node
            for node in range(self.machine.node_count)
            if self.machine.node_power_state(node) is NodePowerState.OFF
        )

    # -- main loop ----------------------------------------------------------

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Inner ECL, wake completion, planning, then node settle."""
        # A boot deadline may have elapsed during the preceding hardware
        # steps; fold it in before any decision looks at node states.
        self.machine.settle_node_power()
        self.inner.on_tick(now_s, dt_s)
        self._complete_wakes()
        if now_s + 1e-12 >= self._next_check_s:
            self._next_check_s += self.check_interval_s
            self._replan(now_s)
        self._settle()

    def annotate_sample(self) -> SampleAnnotations:
        return self.inner.annotate_sample()

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        Migrations, node boots, pending socket reactivations, and pending
        node parks all advance controller state on exact ticks, so each
        pins the run live.  Otherwise the inner ECL's horizon is
        tightened by the next node-planning check.
        """
        if self.engine.migrations.active_count:
            self.macro_cut = "migration"
            return None
        if self._booting_nodes() or self._reactivation_pending():
            self.macro_cut = "node-power"
            return None
        if self._parkable_node() is not None:
            self.macro_cut = "node-drain"
            return None
        view = self.inner.macro_view(now_s, dt_s)
        if view is None:
            self.macro_cut = self.inner.macro_cut
            return None
        horizon, charges = view
        return min(horizon, self._next_check_s), charges

    def macro_step_tick(self, now_s: float, dt_s: float) -> bool:
        """Replay one hardware-inert control tick inside a macro span.

        Mirrors :meth:`on_tick`, except that anything touching node
        power or placement forces the tick live — within a span no
        messages move, so none of those conditions can *arise* here; the
        checks catch state left over from the last live tick.
        """
        if self.engine.migrations.active_count:
            return False
        if self._booting_nodes() or self._reactivation_pending():
            return False
        if now_s + 1e-12 >= self._next_check_s:
            return False  # the node-planning check replans / migrates
        if self._parkable_node() is not None:
            return False
        return self.inner.macro_step_tick(now_s, dt_s)

    def macro_replay(self, start_s: float, dt_s: float, n_ticks: int) -> None:
        """Forward the inner ECL's system-check replay (the planning
        check itself bounds the horizon, so it never fires in-span)."""
        self.inner.macro_replay(start_s, dt_s, n_ticks)

    # -- planning -----------------------------------------------------------

    def _node_view(self, now_s: float) -> PlacementView:
        """Each node collapsed to one aggregate :class:`SocketView`."""
        views = []
        for node in range(self.machine.node_count):
            sids = self.machine.node_sockets(node)
            partition_ids: list[int] = []
            pending = 0.0
            utilization = 0.0
            for sid in sids:
                partition_ids.extend(
                    p.partition_id
                    for p in self.engine.partitions.partitions_on_socket(sid)
                )
                pending += self.engine.hubs[sid].pending_cost_instructions()
                # Demand relative to *full* capacity, not the capacity
                # the inner ECL currently offers: a trimmed socket rides
                # the ECL setpoint at any load, which would read as
                # permanent overload and wake nodes for no demand.
                utilization += self.engine.utilization.utilization(
                    sid, now_s
                ) * self.inner.sockets[sid].capability_fraction()
            views.append(
                SocketView(
                    socket_id=node,
                    partition_ids=tuple(partition_ids),
                    utilization=utilization / len(sids),
                    pending_instructions=pending,
                    active=self._node_is_live(node),
                )
            )
        return PlacementView(time_s=now_s, sockets=tuple(views))

    def _translate(
        self, requests: list[MigrationRequest]
    ) -> list[tuple[int, int]]:
        """Map node-level requests to concrete target sockets.

        Round-robin over the target node's sockets, per plan, so a
        drained node's partitions spread evenly across each receiver
        node rather than piling onto its first socket.
        """
        cursor: dict[int, int] = {}
        out = []
        for request in requests:
            sids = self.machine.node_sockets(request.target_socket)
            index = cursor.get(request.target_socket, 0)
            cursor[request.target_socket] = index + 1
            out.append((request.partition_id, sids[index % len(sids)]))
        return out

    def _replan(self, now_s: float) -> None:
        if self.engine.migrations.active_count:
            return  # let the current wave land before planning the next
        # Freshly woken nodes have now been seen live by a planning
        # round; if the plan below still has no use for them, ``_settle``
        # is free to park them again.
        self._waking = {n for n in self._waking if not self._node_is_live(n)}
        requested = False
        plan = self.planner.plan(self._node_view(now_s))
        # Requests targeting nodes that are off or mid-wake cannot be
        # executed yet: begin (or continue) the wake and drop them; once
        # the node is live the next round re-plans against it.
        executable = []
        for request in plan:
            if self._node_is_live(request.target_socket):
                executable.append(request)
            else:
                self._begin_wake(request.target_socket)
                requested = True
        for partition_id, target_sid in self._translate(executable):
            if self.engine.request_migration(partition_id, target_sid) is not None:
                requested = True
        if requested:
            self._next_check_s = (
                now_s + self.cooldown_intervals * self.check_interval_s
            )

    # -- node drain / power-off ---------------------------------------------

    def _node_is_live(self, node: int) -> bool:
        """Powered on with every socket reactivated."""
        if self.machine.node_power_state(node) is not NodePowerState.ON:
            return False
        return not any(
            sid in self._drained for sid in self.machine.node_sockets(node)
        )

    def _booting_nodes(self) -> bool:
        return any(
            self.machine.node_power_state(node) is NodePowerState.BOOTING
            for node in range(self.machine.node_count)
        )

    def _reactivation_pending(self) -> bool:
        """A woken node whose sockets still await reactivation."""
        return any(
            self.machine.node_power_state(self.machine.node_of_socket(sid))
            is NodePowerState.ON
            for sid in self._drained
        )

    def _parkable_node(self) -> int | None:
        """First non-anchor node that has fully drained and awaits park."""
        for node in range(self.machine.node_count):
            if node == ANCHOR_NODE:
                continue
            if self.machine.node_power_state(node) is not NodePowerState.ON:
                continue
            if node in self._waking:
                continue  # just woken; the next replan decides its fate
            sids = self.machine.node_sockets(node)
            if any(sid in self._drained for sid in sids):
                continue  # mid-wake; reactivation owns these sockets
            if all(
                not self.engine.hubs[sid].partition_ids
                and not self.engine.hubs[sid].pending_messages
                and not self.engine.router.buffered_from(sid)
                for sid in sids
            ):
                return node
        return None

    def _settle(self) -> None:
        """Park-and-power-off nodes that have finished draining."""
        if self.engine.migrations.active_count:
            return
        while (node := self._parkable_node()) is not None:
            self._park_node(node)

    def _park_node(self, node: int) -> None:
        for sid in self.machine.node_sockets(node):
            self.inner.sockets[sid].set_drained(True)
            self.engine.set_socket_online(sid, False)
            self.machine.apply_socket_threads(sid, ())
            self.machine.cstates.set_memory_vacated(sid, True)
            self._drained.add(sid)
        self.machine.power_off_node(node)

    def _begin_wake(self, node: int) -> None:
        if self.machine.node_power_state(node) is NodePowerState.OFF:
            self.machine.power_on_node(node)

    def _complete_wakes(self) -> None:
        """Reactivate the sockets of nodes that have finished booting."""
        for sid in sorted(self._drained):
            node = self.machine.node_of_socket(sid)
            if self.machine.node_power_state(node) is NodePowerState.ON:
                self._wake_socket(sid)
                self._waking.add(node)

    def _wake_socket(self, socket_id: int) -> None:
        self._drained.discard(socket_id)
        self.machine.cstates.set_memory_vacated(socket_id, False)
        socket = self.machine.topology.socket(socket_id)
        # Full wake; the resumed socket-level loop trims from here.
        self.machine.apply_socket_threads(socket_id, set(socket.thread_ids()))
        self.engine.set_socket_online(socket_id, True)
        self.inner.sockets[socket_id].set_drained(False)
