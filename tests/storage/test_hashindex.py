"""Tests for the open-addressing hash index, incl. model-based property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.hashindex import HashIndex


class TestBasics:
    def test_insert_lookup(self):
        idx = HashIndex()
        idx.insert(42, 7)
        assert idx.lookup(42) == [7]
        assert idx.lookup_one(42) == 7
        assert idx.contains(42)

    def test_missing_key(self):
        idx = HashIndex()
        assert idx.lookup(1) == []
        assert idx.lookup_one(1) is None
        assert not idx.contains(1)

    def test_duplicates_chain(self):
        idx = HashIndex()
        idx.insert(5, 1)
        idx.insert(5, 2)
        idx.insert(5, 3)
        assert sorted(idx.lookup(5)) == [1, 2, 3]
        assert len(idx) == 3
        assert idx.distinct_keys == 1

    def test_negative_row_rejected(self):
        idx = HashIndex()
        with pytest.raises(StorageError):
            idx.insert(1, -1)

    def test_growth_preserves_entries(self):
        idx = HashIndex(initial_capacity=16)
        for key in range(500):
            idx.insert(key, key * 2)
        assert idx.capacity >= 512
        for key in range(500):
            assert idx.lookup(key) == [key * 2]

    def test_load_factor_bounded(self):
        idx = HashIndex()
        for key in range(1000):
            idx.insert(key, key)
        assert idx.load_factor <= 0.7 + 1e-9

    def test_negative_keys(self):
        idx = HashIndex()
        idx.insert(-17, 3)
        assert idx.lookup(-17) == [3]

    def test_probe_count_grows(self):
        idx = HashIndex()
        before = idx.probe_count
        idx.insert(1, 1)
        idx.lookup(1)
        assert idx.probe_count > before


class TestDelete:
    def test_delete_whole_key(self):
        idx = HashIndex()
        idx.insert(1, 10)
        idx.insert(1, 11)
        assert idx.delete(1) == 2
        assert idx.lookup(1) == []
        assert len(idx) == 0

    def test_delete_specific_row(self):
        idx = HashIndex()
        idx.insert(1, 10)
        idx.insert(1, 11)
        assert idx.delete(1, row=10) == 1
        assert idx.lookup(1) == [11]

    def test_delete_overflow_row(self):
        idx = HashIndex()
        idx.insert(1, 10)
        idx.insert(1, 11)
        assert idx.delete(1, row=11) == 1
        assert idx.lookup(1) == [10]

    def test_delete_missing(self):
        idx = HashIndex()
        assert idx.delete(99) == 0
        idx.insert(1, 1)
        assert idx.delete(1, row=555) == 0

    def test_backward_shift_keeps_chains_intact(self):
        """Deleting from a probe chain must not orphan later entries."""
        idx = HashIndex(initial_capacity=16)
        keys = list(range(0, 200, 3))
        for key in keys:
            idx.insert(key, key)
        for key in keys[::2]:
            assert idx.delete(key) == 1
        for key in keys[1::2]:
            assert idx.lookup(key) == [key], f"lost key {key}"

    def test_keys_iteration(self):
        idx = HashIndex()
        for key in (3, 1, 2):
            idx.insert(key, key)
        assert sorted(idx.keys()) == [1, 2, 3]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "delete_row"]),
            st.integers(min_value=-50, max_value=50),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=200,
    )
)
def test_property_matches_dict_model(ops):
    """The index always agrees with a dict-of-lists reference model."""
    idx = HashIndex(initial_capacity=16)
    model: dict[int, list[int]] = {}
    for op, key, row in ops:
        if op == "insert":
            idx.insert(key, row)
            model.setdefault(key, []).append(row)
        elif op == "delete":
            removed = idx.delete(key)
            expected = len(model.pop(key, []))
            assert removed == expected
        else:  # delete_row
            removed = idx.delete(key, row=row)
            rows = model.get(key, [])
            if row in rows:
                rows.remove(row)
                if not rows:
                    del model[key]
                assert removed == 1
            else:
                assert removed == 0
    assert len(idx) == sum(len(v) for v in model.values())
    assert idx.distinct_keys == len(model)
    for key, rows in model.items():
        assert sorted(idx.lookup(key)) == sorted(rows)
    # Absent keys in a wide range around the used keys are truly absent.
    for key in range(-60, 60):
        if key not in model:
            assert idx.lookup(key) == []
