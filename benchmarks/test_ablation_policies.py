"""Ablation — control-policy ladder: baseline vs ondemand DVFS vs ECL.

The paper's §7 argues that prior feedback controllers (one DVFS setting
per processor, no uncore control, no C-state orchestration, no energy
profile) leave most of the savings behind.  This bench runs the three
policies over the spike profile and checks the expected ladder.
"""

from repro.loadprofiles import spike_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import bench_duration_s, heading


def run_ladder():
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = spike_profile(duration_s=bench_duration_s())
    return {
        policy: run_experiment(
            RunConfiguration(workload=workload, profile=profile, policy=policy)
        )
        for policy in ("baseline", "ondemand", "ecl")
    }


def test_ablation_policies(run_once):
    runs = run_once(run_ladder)

    heading("Ablation — policy ladder on the spike profile (KV scans)")
    for policy, run in runs.items():
        print(
            f"{policy:>9}: energy {run.total_energy_j:8.0f} J  "
            f"power {run.average_power_w():6.1f} W  "
            f"mean lat {1000 * run.mean_latency_s():7.1f} ms  "
            f"done {run.queries_completed}/{run.queries_submitted}"
        )
    base = runs["baseline"].total_energy_j
    ondemand = runs["ondemand"].total_energy_j
    ecl = runs["ecl"].total_energy_j
    print(
        f"\nsavings vs baseline: ondemand {1 - ondemand / base:.1%}, "
        f"ecl {1 - ecl / base:.1%}"
    )

    # The ladder: per-core DVFS alone helps, the full ECL helps more.
    assert ondemand < base * 0.95
    assert ecl < ondemand * 0.95
    # DBMS-integrated control roughly doubles the DVFS-only savings.
    assert (1 - ecl / base) > 1.5 * (1 - ondemand / base) * 0.8
