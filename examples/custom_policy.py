#!/usr/bin/env python3
"""Register an out-of-tree control policy and race it against the built-ins.

Every control strategy in the reproduction — the paper's ECL, the
uncontrolled baseline, the governor-style comparisons — is a
``ControlPolicy`` resolved by name through the registry in
``repro.sim.policy``.  The registry is open: register a factory under a
new name and every entry point (``RunConfiguration``, the CLI, the
experiment suite, the benchmarks) accepts it immediately.

This example registers a deliberately naive policy — cap every core at
the *lowest* clock, always — and compares it on a short spike profile.
Its joule count looks competitive with the ECL's, but it gets there by
ignoring the paper's other axis entirely: query latency balloons to
several times the ECL's while the spike's backlog drains at minimum
speed.  Energy control without a latency constraint isn't control.

Run:  python examples/custom_policy.py
"""

from repro.hardware.frequency import EnergyPerformanceBias
from repro.loadprofiles import spike_profile
from repro.sim import (
    RunConfiguration,
    SampleAnnotations,
    register_policy,
    registered_policies,
    run_experiment,
)
from repro.workloads import KeyValueWorkload, WorkloadVariant

DURATION_S = 20.0


class LowestClockPolicy:
    """All threads active, all clocks pinned to the minimum, forever."""

    def __init__(self, engine):
        self.machine = engine.machine
        self._applied = False

    @classmethod
    def build(cls, engine, config):
        # The factory hook the registry calls: (engine, config) -> policy.
        return cls(engine)

    def on_tick(self, now_s, dt_s):
        if self._applied:
            return
        machine = self.machine
        machine.cstates.set_active_threads(
            {t.global_id for t in machine.topology.iter_threads()}
        )
        machine.frequency.set_all_core_frequencies(
            machine.params.core_min_ghz, machine.time_s
        )
        machine.set_epb_all(EnergyPerformanceBias.POWERSAVE)
        for sock in machine.topology.sockets:
            machine.frequency.set_uncore_auto(sock.socket_id)
        self._applied = True

    def annotate_sample(self):
        # Shows up in every SamplePoint's `applied` column.
        return SampleAnnotations(
            applied=tuple("min-clock" for _ in self.machine.topology.sockets)
        )


def main() -> None:
    register_policy(
        "lowest-clock",
        LowestClockPolicy.build,
        description="every core pinned to the minimum clock (naive)",
    )
    print(f"registered policies: {', '.join(registered_policies())}\n")

    runs = {}
    for policy in ("baseline", "lowest-clock", "ecl"):
        print(f"running {policy} ...")
        runs[policy] = run_experiment(
            RunConfiguration(
                workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
                profile=spike_profile(duration_s=DURATION_S),
                policy=policy,
            )
        )

    print(f"\n{'policy':>14} {'energy':>9} {'mean lat':>10} {'done':>12}")
    for policy, run in runs.items():
        print(
            f"{policy:>14} {run.total_energy_j:7.0f} J "
            f"{1000 * run.mean_latency_s():7.1f} ms "
            f"{run.queries_completed:5}/{run.queries_submitted}"
        )

    naive = runs["lowest-clock"]
    ecl = runs["ecl"]
    print(
        f"\nalways-slow matches the ECL's joules but pays "
        f"{naive.mean_latency_s() / ecl.mean_latency_s():.0f}x its mean "
        "latency: the spike's backlog drains at minimum speed. The ECL "
        "saves the same energy while holding the latency limit — that "
        "trade-off is the whole point of the paper."
    )


if __name__ == "__main__":
    main()
