"""Performance model: instructions retired for a configuration + workload.

The ECL observes performance exclusively through *instructions retired*
(paper §4.1), so this model maps

``(active cores with frequencies, uncore frequency) × workload``

to a socket's instruction throughput capacity, memory traffic, and the
resulting per-core pipeline activity.  Four mechanisms shape the energy
profiles of §4.2:

1. **Compute throughput** — each core retires ``f / cpi_eff`` instructions
   per second; an active HyperThread sibling multiplies core throughput by
   the workload's SMT speedup (≈1.3 for compute, ≈1.0 when a shared
   resource is already saturated).
2. **Memory-latency stalls** — ``cpi_eff`` includes
   ``miss_rate × latency_cycles`` where the DRAM latency has an
   uncore-clock-dependent component (LLC/ring/memory controller).  This
   makes IPC saturate in the core clock for latency-bound (indexed)
   workloads — the paper's "medium frequencies win" effect.
3. **Bandwidth cap** — aggregate traffic is limited by the uncore-governed
   socket bandwidth (Fig. 6); excess demand stalls all cores
   proportionally, which is why high core clocks are wasted on scans
   (Fig. 10(a)).
4. **Cache-line contention** — workloads with a contended atomic section
   are capped by the serial hand-off rate of the hot cache line.  When all
   contending threads share one physical core the hand-off stays core-local
   (uncore-independent and fast); once multiple cores contend, each
   hand-off crosses the LLC at uncore speed and queues behind the other
   contenders.  This reproduces Fig. 10(b): two HyperThreads of one core at
   turbo beat 48 threads by ~3× while the uncore can sit at its minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.hardware.presets import HaswellEPParameters
from repro.hardware.topology import Topology
from repro.units import GHZ, require_fraction, require_non_negative, require_positive


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Low-level execution characteristics of a workload.

    These are the only facts the hardware model needs about a workload;
    the concrete benchmarks in :mod:`repro.workloads` derive them from
    their operator mixes.

    Attributes:
        name: human-readable identifier.
        base_cpi: cycles per instruction with all memory hits in-core.
        ht_speedup: core throughput with two active siblings relative to
            one (1.0 = SMT useless, 2.0 = perfect scaling).
        bytes_per_instr: DRAM traffic generated per retired instruction.
        miss_rate: long-latency (DRAM) accesses per instruction.
        atomic_ops_per_instr: contended critical-section entries per
            instruction (0 = uncontended).
        atomic_local_ns: hand-off latency of the contended cache line when
            every contender shares one physical core.
        contention_queue_factor: growth of the cross-core hand-off latency
            per extra contending core.  High for tight atomic loops (the
            line is always in flight, arbitration queues), low for
            workloads that only touch the hot line occasionally.
    """

    name: str
    base_cpi: float
    ht_speedup: float = 1.3
    bytes_per_instr: float = 0.0
    miss_rate: float = 0.0
    atomic_ops_per_instr: float = 0.0
    atomic_local_ns: float = 20.0
    contention_queue_factor: float = 0.1
    #: Transaction-oriented systems spin on latches: waiting threads keep
    #: *retiring* instructions without making progress, so the hardware
    #: instruction counters overreport useful throughput (the paper's
    #: §5.3 caveat about applying the ECL to such architectures).
    spinlock_retirement: bool = False

    def __post_init__(self) -> None:
        require_positive(self.base_cpi, "base_cpi")
        if not 1.0 <= self.ht_speedup <= 2.0:
            raise ConfigurationError(
                f"ht_speedup must lie in [1, 2], got {self.ht_speedup}"
            )
        require_non_negative(self.bytes_per_instr, "bytes_per_instr")
        require_non_negative(self.miss_rate, "miss_rate")
        require_non_negative(self.atomic_ops_per_instr, "atomic_ops_per_instr")
        require_positive(self.atomic_local_ns, "atomic_local_ns")
        require_non_negative(self.contention_queue_factor, "contention_queue_factor")

    def blended_with(
        self, other: "WorkloadCharacteristics", other_weight: float
    ) -> "WorkloadCharacteristics":
        """Instruction-weighted blend of two workloads.

        Used when a socket concurrently serves heterogeneous partitions;
        the profile then reflects the interference mix, matching the
        paper's requirement that profiles "take query interferences into
        account".
        """
        w = require_fraction(other_weight, "other_weight")
        if w == 0.0:
            return self
        if w == 1.0:
            return other

        def mix(a: float, b: float) -> float:
            return a * (1.0 - w) + b * w

        return WorkloadCharacteristics(
            name=f"{self.name}+{other.name}",
            base_cpi=mix(self.base_cpi, other.base_cpi),
            ht_speedup=mix(self.ht_speedup, other.ht_speedup),
            bytes_per_instr=mix(self.bytes_per_instr, other.bytes_per_instr),
            miss_rate=mix(self.miss_rate, other.miss_rate),
            atomic_ops_per_instr=mix(
                self.atomic_ops_per_instr, other.atomic_ops_per_instr
            ),
            atomic_local_ns=mix(self.atomic_local_ns, other.atomic_local_ns),
            contention_queue_factor=mix(
                self.contention_queue_factor, other.contention_queue_factor
            ),
            spinlock_retirement=self.spinlock_retirement
            or other.spinlock_retirement,
        )

    def scaled_intensity(self, factor: float) -> "WorkloadCharacteristics":
        """Return a variant with memory traffic scaled by ``factor``."""
        require_non_negative(factor, "factor")
        return replace(
            self,
            name=self.name,
            bytes_per_instr=self.bytes_per_instr * factor,
            miss_rate=self.miss_rate * factor,
        )


@dataclass(frozen=True)
class ActiveCore:
    """One active physical core as seen by the performance model."""

    socket_id: int
    core_id: int
    frequency_ghz: float
    sibling_count: int

    def __post_init__(self) -> None:
        require_positive(self.frequency_ghz, "frequency_ghz")
        if self.sibling_count < 1:
            raise ConfigurationError(
                f"active core needs >= 1 sibling, got {self.sibling_count}"
            )


@dataclass(frozen=True)
class SocketLoad:
    """Demand placed on one socket during a simulation step.

    ``demand_instructions_per_s = None`` means unbounded demand (the
    saturation case used when evaluating profile configurations).
    """

    characteristics: WorkloadCharacteristics
    demand_instructions_per_s: float | None = None


@dataclass(frozen=True)
class SocketPerformance:
    """Resolved performance of one socket for a step.

    Attributes:
        capacity_ips: instruction throughput if demand were unbounded.
        executed_ips: throughput actually delivered given the demand.
        traffic_gbs: DRAM traffic at the executed throughput.
        utilization: executed / capacity (1.0 when saturated).
        bandwidth_limited: whether the bandwidth cap was binding.
        contention_limited: whether the atomic hand-off cap was binding.
    """

    capacity_ips: float
    executed_ips: float
    traffic_gbs: float
    utilization: float
    bandwidth_limited: bool
    contention_limited: bool
    #: Instructions the hardware counters *see* retiring.  Equal to
    #: ``executed_ips`` for data-oriented execution; inflated by spinning
    #: threads under contention when the workload has
    #: ``spinlock_retirement`` (transaction-oriented latching).
    retired_ips: float = 0.0


class PerformanceModel:
    """Maps (configuration, workload) to socket instruction throughput."""

    #: Share of the cross-core hand-off latency that scales with the
    #: inverse uncore clock (the LLC/ring traversal).
    CONTENTION_UNCORE_FRACTION = 0.5

    def __init__(
        self,
        topology: Topology,
        params: HaswellEPParameters,
        socket_params: "tuple[HaswellEPParameters, ...] | None" = None,
    ):
        self._topology = topology
        self._params = params
        #: Per-socket parameter sets (the owning node's, on clusters).
        #: Single-node machines repeat the one ``params`` object.
        if socket_params is None:
            socket_params = tuple(params for _ in topology.sockets)
        self._socket_params = socket_params

    def params_for(self, socket_id: int) -> HaswellEPParameters:
        """The parameter set governing one socket."""
        return self._socket_params[socket_id]

    # -- memory system ----------------------------------------------------------

    def bandwidth_gbs(
        self,
        uncore_ghz: float,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Socket memory bandwidth as a function of the uncore clock.

        Linear between ``min_uncore_bandwidth_fraction × peak`` at the
        lowest and the full peak at the highest uncore step (Fig. 6).
        """
        p = params if params is not None else self._params
        span = p.uncore_max_ghz - p.uncore_min_ghz
        t = 0.0 if span <= 0 else (uncore_ghz - p.uncore_min_ghz) / span
        t = min(max(t, 0.0), 1.0)
        frac = p.min_uncore_bandwidth_fraction + t * (
            1.0 - p.min_uncore_bandwidth_fraction
        )
        return p.peak_bandwidth_gbs * frac

    def memory_latency_ns(
        self,
        uncore_ghz: float,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Average DRAM access latency; stretches as the uncore slows."""
        p = params if params is not None else self._params
        w = p.mem_latency_uncore_fraction
        scale = (1.0 - w) + w * (p.uncore_max_ghz / uncore_ghz)
        return p.mem_latency_ns * scale

    # -- core throughput ----------------------------------------------------------

    def core_throughput_ips(
        self,
        core: ActiveCore,
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Instruction throughput of one core, before socket-level caps."""
        latency_cycles = chars.miss_rate * (
            self.memory_latency_ns(uncore_ghz, params) * core.frequency_ghz
        )
        cpi_eff = chars.base_cpi + latency_cycles
        single = core.frequency_ghz * GHZ / cpi_eff
        if core.sibling_count >= 2:
            return single * chars.ht_speedup
        return single

    # -- contention ----------------------------------------------------------------

    def atomic_handoff_ns(
        self,
        contending_cores: int,
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        core_ghz: float | None = None,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Serial hand-off latency of the contended cache line.

        One core (any number of its siblings): the line never leaves the
        core's private caches, so the hand-off runs at core speed —
        ``atomic_local_ns`` is quoted at the nominal clock and shrinks
        with a faster core (this is why turbo wins in Fig. 10(b)).
        Multiple cores: every hand-off crosses the LLC at uncore speed and
        queues behind the other contenders.
        """
        p = params if params is not None else self._params
        if contending_cores <= 1:
            freq = core_ghz if core_ghz is not None else p.core_nominal_ghz
            return chars.atomic_local_ns * (p.core_nominal_ghz / freq)
        w = self.CONTENTION_UNCORE_FRACTION
        uncore_scale = (1.0 - w) + w * (p.uncore_max_ghz / uncore_ghz)
        queue = 1.0 + chars.contention_queue_factor * (contending_cores - 1)
        return p.cacheline_transfer_ns * uncore_scale * queue

    def contention_cap_ips(
        self,
        contending_cores: int,
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        core_ghz: float | None = None,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Socket instruction-throughput cap due to the atomic section."""
        if chars.atomic_ops_per_instr <= 0:
            return float("inf")
        handoff_s = (
            self.atomic_handoff_ns(
                contending_cores, uncore_ghz, chars, core_ghz, params
            )
            * 1e-9
        )
        ops_per_s = 1.0 / handoff_s
        return ops_per_s / chars.atomic_ops_per_instr

    # -- socket resolution ------------------------------------------------------------

    def socket_capacity(
        self,
        active_cores: Sequence[ActiveCore],
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
    ) -> SocketPerformance:
        """Throughput capacity of a socket under unbounded demand."""
        return self.resolve(
            active_cores, uncore_ghz, SocketLoad(characteristics=chars)
        )

    def resolve(
        self,
        active_cores: Sequence[ActiveCore],
        uncore_ghz: float,
        load: SocketLoad,
    ) -> SocketPerformance:
        """Resolve the executed throughput of a socket for one step."""
        chars = load.characteristics
        if not active_cores:
            return SocketPerformance(
                capacity_ips=0.0,
                executed_ips=0.0,
                traffic_gbs=0.0,
                utilization=0.0,
                bandwidth_limited=False,
                contention_limited=False,
                retired_ips=0.0,
            )

        p = self._socket_params[active_cores[0].socket_id]
        parallel = sum(
            self.core_throughput_ips(core, uncore_ghz, chars, p)
            for core in active_cores
        )

        bandwidth_limited = False
        capacity = parallel
        if chars.bytes_per_instr > 0:
            bandwidth = self.bandwidth_gbs(uncore_ghz, p) * 1e9
            demand = parallel * chars.bytes_per_instr
            if demand > bandwidth:
                # Memory-controller thrashing: over-subscription degrades
                # the *delivered* bandwidth (queueing, row-buffer misses)
                # once more request streams than physical cores pile on —
                # the reason the all-threads baseline is slower than the
                # ECL's lean configuration on scans (section 6.1).
                ratio = demand / bandwidth
                streams = sum(c.sibling_count for c in active_cores)
                excess = max(0, streams - p.cores_per_socket) / p.cores_per_socket
                efficiency = max(
                    p.bandwidth_contention_floor,
                    1.0
                    / (
                        1.0
                        + p.bandwidth_contention_penalty
                        * excess
                        * (ratio - 1.0)
                    ),
                )
                capacity = bandwidth * efficiency / chars.bytes_per_instr
                bandwidth_limited = True

        contention_limited = False
        mean_core_ghz = sum(c.frequency_ghz for c in active_cores) / len(
            active_cores
        )
        contention_cap = self.contention_cap_ips(
            len(active_cores), uncore_ghz, chars, mean_core_ghz, p
        )
        if contention_cap < capacity:
            capacity = contention_cap
            contention_limited = True

        demand = load.demand_instructions_per_s
        executed = capacity if demand is None else min(demand, capacity)
        utilization = 0.0 if capacity <= 0 else executed / capacity
        traffic = executed * chars.bytes_per_instr / 1e9
        retired = executed
        if (
            chars.spinlock_retirement
            and contention_limited
            and executed >= capacity * (1.0 - 1e-9)
        ):
            # Threads blocked on the contended latch spin at full IPC:
            # the counters retire the *parallel* rate, not the useful one.
            retired = max(executed, parallel)
        return SocketPerformance(
            capacity_ips=capacity,
            executed_ips=executed,
            traffic_gbs=traffic,
            utilization=utilization,
            bandwidth_limited=bandwidth_limited,
            contention_limited=contention_limited,
            retired_ips=retired,
        )

    def core_compute_share(
        self,
        core: ActiveCore,
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Demand-independent share of cycles a core spends computing.

        Memory-latency stalls reduce the share; it only depends on the
        configuration and the workload, so the machine's step-resolution
        cache stores it per active core.
        """
        latency_cycles = chars.miss_rate * (
            self.memory_latency_ns(uncore_ghz, params) * core.frequency_ghz
        )
        return chars.base_cpi / (chars.base_cpi + latency_cycles)

    def activity_from_share(self, compute_share: float, socket_scale: float) -> float:
        """Combine a cached compute share with the per-tick socket scale."""
        return require_fraction(
            min(1.0, max(0.0, socket_scale)) * compute_share, "activity"
        )

    def core_activity(
        self,
        core: ActiveCore,
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        socket_scale: float,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Pipeline activity of a core for the power model.

        ``socket_scale`` is executed/parallel throughput of the socket —
        cores stalled by the bandwidth or contention cap (or lacking
        demand) switch less and therefore draw less dynamic power.
        Memory-latency stalls additionally reduce activity.
        """
        return self.activity_from_share(
            self.core_compute_share(core, uncore_ghz, chars, params),
            socket_scale,
        )

    def resolve_with_capacity(
        self,
        capacity_ips: float,
        parallel_ips: float,
        bandwidth_limited: bool,
        contention_limited: bool,
        load: SocketLoad,
    ) -> SocketPerformance:
        """Demand-dependent tail of :meth:`resolve` from a cached capacity.

        ``capacity_ips``/``parallel_ips`` and the limit flags are
        demand-independent, so the machine caches them per configuration;
        this replays the remaining arithmetic of :meth:`resolve` with the
        exact same operations, making the cached path bit-identical to the
        uncached one.
        """
        chars = load.characteristics
        demand = load.demand_instructions_per_s
        executed = capacity_ips if demand is None else min(demand, capacity_ips)
        utilization = 0.0 if capacity_ips <= 0 else executed / capacity_ips
        traffic = executed * chars.bytes_per_instr / 1e9
        retired = executed
        if (
            chars.spinlock_retirement
            and contention_limited
            and executed >= capacity_ips * (1.0 - 1e-9)
        ):
            retired = max(executed, parallel_ips)
        return SocketPerformance(
            capacity_ips=capacity_ips,
            executed_ips=executed,
            traffic_gbs=traffic,
            utilization=utilization,
            bandwidth_limited=bandwidth_limited,
            contention_limited=contention_limited,
            retired_ips=retired,
        )

    def parallel_throughput_ips(
        self,
        active_cores: Sequence[ActiveCore],
        uncore_ghz: float,
        chars: WorkloadCharacteristics,
        params: HaswellEPParameters | None = None,
    ) -> float:
        """Uncapped sum of per-core throughputs (helper for activity)."""
        return sum(
            self.core_throughput_ips(core, uncore_ghz, chars, params)
            for core in active_cores
        )


def blend_characteristics(
    parts: Sequence[tuple[WorkloadCharacteristics, float]],
) -> WorkloadCharacteristics:
    """Blend several workloads by instruction weight.

    Args:
        parts: (characteristics, weight) pairs; weights need not sum to 1.

    Raises:
        ConfigurationError: if ``parts`` is empty or weights sum to 0.
    """
    if not parts:
        raise ConfigurationError("cannot blend an empty workload list")
    total = sum(weight for _, weight in parts)
    if total <= 0:
        raise ConfigurationError("blend weights must sum to > 0")
    result: WorkloadCharacteristics | None = None
    accumulated = 0.0
    for chars, weight in parts:
        if weight < 0:
            raise ConfigurationError(f"negative blend weight {weight}")
        if weight == 0:
            continue
        if result is None:
            result = chars
            accumulated = weight
        else:
            share = weight / (accumulated + weight)
            result = result.blended_with(chars, share)
            accumulated += weight
    assert result is not None  # guarded by the total > 0 check
    return result
