"""Engine tuning knobs as one configuration object.

Historically the runtime's cost constants lived as module-level floats
(``WORKER_QUANTUM_INSTRUCTIONS`` in :mod:`repro.dbms.engine`, the
``TRANSFER_*`` family in :mod:`repro.dbms.inter_socket`), which made
per-run tuning require monkeypatching.  :class:`EngineConfig` promotes
them to fields with the historical values as defaults — a default-built
config reproduces the old constants bit-for-bit — and adds the knobs of
the partition-migration cost model.

``vector_messages`` selects the struct-of-arrays message plane: the
intra-socket hubs store modeled messages as parallel numpy columns and
the workers drain them with vectorized budget cuts.  The SoA plane is
bit-identical to the scalar object plane (same drain order, tie-breaks,
and float folds), so the flag is purely a kill switch / A-B oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import SimulationError


@dataclass(frozen=True)
class EngineConfig:
    """Cost-model knobs of the DBMS runtime, tunable per run.

    Attributes:
        worker_quantum_instructions: instruction quantum a worker receives
            per scheduling round inside a tick.
        transfer_instructions_per_message: instruction cost charged per
            transferred message on each side of an inter-socket flush.
        transfer_instructions_per_flush: fixed instruction cost per buffer
            flush (syscall-free polling transfer), charged to the sender.
        transfer_bytes_per_message: interconnect bytes per message
            (header + payload estimate).
        migration_instructions_per_byte: instruction cost, per side, of
            copying one byte of partition data across the interconnect
            during a partition migration.
        migration_floor_bytes: lower bound on the byte volume charged for
            a migration.  Modeled workloads keep their table fragments
            empty (costs are analytic), so this stands in for the
            partition's working set; real-mode partitions use
            ``max(bytes_used, floor)``.
        internode_instructions_per_message: per-message transfer cost on
            routes that cross a *node* boundary (network serialization +
            NIC doorbells instead of a QPI cacheline push).
        internode_instructions_per_flush: fixed per-flush cost of an
            inter-node transfer (syscall + NIC submission, far above the
            polling cost of the intra-node path).
        internode_migration_instructions_per_byte: per-byte, per-side
            cost of copying partition data across the network during an
            inter-node migration — several times the QPI copy cost.
        vector_messages: run the message plane on struct-of-arrays
            columns (the vectorized hot path).  ``False`` falls back to
            the scalar per-message object plane; both produce
            bit-identical results.
    """

    worker_quantum_instructions: float = 200_000.0
    transfer_instructions_per_message: float = 150.0
    transfer_instructions_per_flush: float = 600.0
    transfer_bytes_per_message: float = 128.0
    migration_instructions_per_byte: float = 0.5
    migration_floor_bytes: float = 2_800_000.0
    internode_instructions_per_message: float = 600.0
    internode_instructions_per_flush: float = 1800.0
    internode_migration_instructions_per_byte: float = 2.0
    vector_messages: bool = True

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.type == "bool" or isinstance(value, bool):
                continue
            if not value > 0:
                raise SimulationError(
                    f"EngineConfig.{f.name} must be > 0, got {value!r}"
                )


#: The canonical defaults; identical to the historical module constants.
DEFAULT_ENGINE_CONFIG = EngineConfig()
