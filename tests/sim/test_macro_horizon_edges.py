"""Edge cases of the macro-stepping span program and its horizons.

The A/B matrix in ``test_macro_ab.py`` proves whole-run bit-identity;
these tests pin the *mechanisms* at the edges the composite span
executor leans on: RTI phase boundaries landing exactly at a span
start, the multiplexed-measurement budget crossing the slot cost
mid-span, the online counter window opening on the first skipped tick
(replayed in-span instead of forcing a live tick), drained sockets
standing their loop down, and the exact tick grid of the system-check
replay.  Each integration scenario also re-asserts macro on/off
bit-identity, so a regression in any one mechanism fails loudly here
with its name on the test rather than somewhere in the matrix.
"""

import pytest

from repro.ecl.rti import RtiPlan
from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import constant_profile, spike_profile
from repro.profiles.configuration import Configuration
from repro.sim import RunConfiguration, SimulationRunner
from repro.sim.macro import SpanCutStats, bucket_for
from repro.workloads import KeyValueWorkload, WorkloadVariant


def _run(policy, *, macro, profile, seed=5, ecl_params=None):
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=profile,
        policy=policy,
        seed=seed,
        macro_step=macro,
        **({"ecl_params": ecl_params} if ecl_params is not None else {}),
    )
    runner = SimulationRunner(config)
    result = runner.run()
    return result, runner


def _assert_identical(on, off):
    assert on.total_energy_j == off.total_energy_j
    assert on.queries_submitted == off.queries_submitted
    assert on.queries_completed == off.queries_completed
    assert on.latencies_s == off.latencies_s
    assert len(on.samples) == len(off.samples)
    for a, b in zip(on.samples, off.samples):
        assert a == b


def _any_config():
    return Configuration.build(
        socket_id=0,
        active_threads={0},
        core_frequencies={0: 1.2},
        uncore_ghz=2.0,
    )


class TestRtiPlanHorizons:
    """The RTI phase predicate and its event horizon at the edges."""

    def test_disabled_duty_has_unbounded_horizon(self):
        plan = RtiPlan(_any_config(), duty=1.0, period_s=0.2)
        assert not plan.uses_rti
        assert plan.is_active_phase(0.137)
        assert plan.next_phase_change_s(0.137) == float("inf")

    def test_zero_duty_never_flips(self):
        plan = RtiPlan(_any_config(), duty=0.0, period_s=0.2)
        assert plan.uses_rti
        assert not plan.is_active_phase(0.0)
        assert not plan.is_active_phase(0.19)
        # Constant-False predicate: no flip, no span fence.
        assert plan.next_phase_change_s(0.05) == float("inf")

    @pytest.mark.parametrize("now_s", [0.05, 0.1501, 0.199, 3.73])
    def test_predicate_constant_until_returned_instant(self, now_s):
        """``next_phase_change_s`` is exactly the first time the phase
        predicate can change value — the contract the span executor's
        straggler logic relies on when a boundary lands one tick ahead
        of a span start."""
        plan = RtiPlan(_any_config(), duty=0.5, period_s=0.2)
        flip = plan.next_phase_change_s(now_s)
        phase_now = plan.is_active_phase(now_s)
        # Constant strictly before the horizon...
        probe = now_s
        while probe < flip - 1e-6:
            assert plan.is_active_phase(probe) == phase_now
            probe += 1e-3
        assert plan.is_active_phase(flip - 1e-6) == phase_now
        # ...and flipped at (or within float-epsilon of) the horizon.
        assert plan.is_active_phase(flip + 1e-6) != phase_now


class TestSpanCutStats:
    def test_replays_accumulate_by_reason(self):
        stats = SpanCutStats()
        stats.record_replay("window-open")
        stats.record_replay("window-open")
        stats.record_replay("mux-window-open")
        summary = stats.as_dict(spans=0, ticks_skipped=0)
        assert summary["in_span_replays"] == {
            "window-open": 2,
            "mux-window-open": 1,
        }

    def test_single_tick_spans_have_a_bucket(self):
        # Composite spans commit lone straggler ticks; the histogram
        # must not lose them.
        assert bucket_for(1) == "1-9"
        stats = SpanCutStats()
        stats.record_span(1, "policy")
        assert stats.lengths["1-9"] == 1

    def test_refusal_reasons_and_components(self):
        stats = SpanCutStats()
        stats.record_refusal("policy", "reconfig")
        stats.record_refusal("policy", "reconfig")
        stats.record_refusal("loadgen")
        stats.record_span(12, "engine")
        summary = stats.as_dict(spans=1, ticks_skipped=12)
        assert summary["refusals"] == 3
        assert summary["cut_by"] == {"policy": 2, "engine": 1, "loadgen": 1}
        assert summary["policy_reasons"] == {"reconfig": 2}
        assert summary["span_lengths"]["10-29"] == 1


class _FakeSystem:
    """Deadline-driven stand-in for the system-level latency check."""

    def __init__(self, next_check_s, interval_s):
        self.next_check_s = next_check_s
        self.interval_s = interval_s
        self.fired_at = []

    def on_tick(self, now_s):
        if now_s + 1e-12 >= self.next_check_s:
            self.fired_at.append(now_s)
            self.next_check_s += self.interval_s


class TestMacroReplayGrid:
    """The system-check replay fires on the exact per-tick time grid."""

    def _policy(self):
        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=spike_profile(duration_s=1.0),
            policy="ecl",
            seed=5,
        )
        return SimulationRunner(config).policy

    def test_fires_on_the_engine_tick_grid(self):
        policy = self._policy()
        dt = 0.002
        start = 0.123456789
        # The per-tick path would run the control phase at the left-fold
        # times start, start+dt, ... — replay must hit those exactly.
        grid = []
        t = start
        for _ in range(50):
            grid.append(t)
            t = t + dt
        fake = _FakeSystem(next_check_s=grid[17], interval_s=23 * dt)
        policy.system = fake
        policy.macro_replay(start, dt, 50)
        assert fake.fired_at == [grid[17], grid[40]]

    def test_check_due_at_span_start_fires_at_start(self):
        policy = self._policy()
        dt = 0.002
        fake = _FakeSystem(next_check_s=0.5, interval_s=1.0)
        policy.system = fake
        policy.macro_replay(0.5, dt, 10)
        assert fake.fired_at == [0.5]

    def test_far_future_check_skips_replay_entirely(self):
        policy = self._policy()
        fake = _FakeSystem(next_check_s=99.0, interval_s=1.0)
        policy.system = fake
        policy.macro_replay(0.0, 0.002, 100)
        assert fake.fired_at == []


class TestWindowOpenReplayedInSpan:
    """The online counter window opening on the first skipped tick is a
    hardware-inert action: the composite executor replays it mid-span
    instead of cutting to per-tick mode."""

    def test_replays_happen_and_identity_holds(self):
        profile = constant_profile(duration_s=4.0, fraction=0.3)
        on, runner_on = _run("ecl", macro=True, profile=profile)
        off, _ = _run("ecl", macro=False, profile=profile)
        _assert_identical(on, off)
        replays = runner_on.span_cuts.replays
        assert replays.get("window-open", 0) > 0


class TestMuxBudgetCrossesSlotCostMidSpan:
    """The multiplexed-measurement budget accrues during spans; the slot
    start (which applies a probe configuration) must land on a live tick
    and still leave the run bit-identical."""

    def test_slots_start_under_macro_stepping(self):
        # The spike drifts the profile hard enough (with a tightened
        # drift threshold) that the maintainer schedules multiplexed
        # re-measurement slots within a short run.
        profile = spike_profile(duration_s=4.0)
        params = EclParameters(drift_threshold=0.02)
        on, runner_on = _run(
            "ecl", macro=True, profile=profile, ecl_params=params
        )
        off, runner_off = _run(
            "ecl", macro=False, profile=profile, ecl_params=params
        )
        _assert_identical(on, off)
        started_on = sum(
            s.mux_slots_started for s in runner_on.policy.sockets.values()
        )
        started_off = sum(
            s.mux_slots_started for s in runner_off.policy.sockets.values()
        )
        assert started_on > 0
        assert started_on == started_off
        # The macro run really spanned around the slots rather than
        # dropping to per-tick mode for the whole event.
        assert runner_on.macro_ticks_skipped > 0


class TestRtiFlipAtSpanBoundary:
    """RTI duty cycling produces phase flips that repeatedly land exactly
    one tick after a span ends (the horizon stops the span short of the
    boundary; the flip runs live; the next span resumes behind it)."""

    def test_flips_run_live_and_identity_holds(self):
        profile = constant_profile(duration_s=4.0, fraction=0.25)
        on, runner_on = _run("ecl", macro=True, profile=profile)
        off, _ = _run("ecl", macro=False, profile=profile)
        _assert_identical(on, off)
        stats = runner_on.span_cut_stats()
        # Flips force live reconfiguration ticks, attributed to the
        # policy with the "reconfig" reason.
        assert stats["policy_reasons"].get("reconfig", 0) > 0
        assert runner_on.macro_ticks_skipped > 0


class TestDrainedSocketHorizon:
    """A drained socket's loop stands down: unbounded horizon, trivially
    replayable, and a consolidation run that drains (and the matrix's
    wave test wakes) sockets stays bit-identical."""

    def test_drained_loop_is_inert(self):
        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=spike_profile(duration_s=1.0),
            policy="ecl",
            seed=5,
        )
        socket_ecl = SimulationRunner(config).policy.sockets[0]
        socket_ecl.set_drained(True)
        assert socket_ecl.macro_horizon_s(0.25) == float("inf")
        assert socket_ecl.macro_tick_replayable(0.25)
        socket_ecl.set_drained(False)

    def test_consolidation_drain_identity(self):
        profile = constant_profile(duration_s=4.0, fraction=0.05)
        on, runner_on = _run("ecl-consolidate", macro=True, profile=profile)
        off, runner_off = _run("ecl-consolidate", macro=False, profile=profile)
        _assert_identical(on, off)
        # The low-load run must actually consolidate, and both paths
        # must agree on which sockets ended up drained.
        assert runner_on.policy.drained_sockets
        assert (
            runner_on.policy.drained_sockets
            == runner_off.policy.drained_sockets
        )
        assert runner_on.macro_ticks_skipped > 0


class TestBootDeadlineSpans:
    """Node boots fold into macro spans; the settle tick must not slip.

    The machine's event horizon caps every span at the earliest boot
    deadline, so the tick on which ``settle_node_power`` flips the node
    runs live in macro mode too.  The edge: a deadline landing *exactly*
    on the tick grid (a span may end precisely there) versus one landing
    between ticks (the settle belongs to the following tick).  Either
    way the macro run must be bit-identical to per-tick stepping — a
    one-tick-late settle shifts the reactivation, the wake-hold window,
    and every joule after it.
    """

    def _cluster_run(self, *, macro, power_up_s):
        from repro.hardware.cluster import homogeneous_cluster
        from repro.telemetry import TraceRecorder

        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=spike_profile(duration_s=12.0),
            policy="ecl-cluster",
            seed=5,
            macro_step=macro,
            cluster=homogeneous_cluster(2, power_up_s=power_up_s),
        )
        recorder = TraceRecorder()
        runner = SimulationRunner(config, observers=[recorder])
        result = runner.run()
        return result, runner, recorder

    @pytest.mark.parametrize(
        "power_up_s",
        [
            2.0,  # deadline on the tick grid: 2.0 / 0.002 = 1000 ticks
            2.0007,  # deadline between ticks: settles on the next tick
        ],
    )
    def test_boot_settle_tick_identical(self, power_up_s):
        on, runner_on, rec = self._cluster_run(
            macro=True, power_up_s=power_up_s
        )
        off, runner_off, _ = self._cluster_run(
            macro=False, power_up_s=power_up_s
        )
        _assert_identical(on, off)
        # The spike must actually boot the parked satellite, and the
        # macro path must fold ticks across the boot window instead of
        # pinning the whole boot live.
        states = set()
        for event in rec.events():
            if event.get("event") == "node_power":
                states.update((event.get("states") or {}).values())
        assert "booting" in states
        assert runner_on.macro_ticks_skipped > 0
        assert (
            runner_on.policy.powered_off_nodes
            == runner_off.policy.powered_off_nodes
        )
