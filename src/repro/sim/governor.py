"""An OS-style ondemand DVFS governor — the related-work comparison.

The paper's §7 discusses prior feedback controllers (e.g. Tu et al.'s
E²DBMS) that adjust *one DVFS setting per processor* based on load,
without uncore control, C-state orchestration, race-to-idle, or an
energy profile.  This policy reproduces that class of control as an
additional comparison point between the uncontrolled baseline and the
full ECL:

* every hardware thread stays active (the DBMS polls);
* each socket's core clocks step up when utilization is high and down
  when it is low (the classic ondemand ladder walk);
* the uncore clock stays in automatic (hardware) UFS mode;
* there is no latency feedback and no idle orchestration.

Expectation (and what the ablation bench asserts): the governor lands
between baseline and ECL — it saves core DVFS power at partial load but
cannot touch the uncore, cannot park threads, and mis-clocks
bandwidth-bound workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dbms.engine import DatabaseEngine
from repro.errors import ControlError
from repro.hardware.frequency import EnergyPerformanceBias
from repro.sim.clock import PeriodicDeadline
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.sim.runner import RunConfiguration


class OndemandGovernorPolicy:
    """Per-socket DVFS ladder walking on a fixed period."""

    def __init__(
        self,
        engine: DatabaseEngine,
        period_s: float = 0.1,
        up_threshold: float = 0.80,
        down_threshold: float = 0.40,
    ):
        if period_s <= 0:
            raise ControlError(f"period must be > 0, got {period_s}")
        if not 0 < down_threshold < up_threshold <= 1:
            raise ControlError(
                f"need 0 < down < up <= 1, got {down_threshold}, {up_threshold}"
            )
        self.engine = engine
        self.machine = engine.machine
        self.period_s = period_s
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        #: Sustained steps only, per socket: ondemand does not request
        #: turbo itself, and wimpy/brawny sockets walk different ladders.
        self._steps = {
            sock.socket_id: tuple(
                f
                for f in self.machine.frequency.core_ladder_for(
                    sock.socket_id
                ).steps
                if f
                <= self.machine.params_for(sock.socket_id).core_nominal_ghz
            )
            for sock in self.machine.topology.sockets
        }
        self._index: dict[int, int] = {}
        self._decision = PeriodicDeadline(period_s)
        self._initialized = False

    @classmethod
    def build(
        cls, engine: DatabaseEngine, config: "RunConfiguration"
    ) -> "OndemandGovernorPolicy":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        return cls(engine)

    def _apply_initial_state(self) -> None:
        machine = self.machine
        all_threads = {t.global_id for t in machine.topology.iter_threads()}
        machine.cstates.set_active_threads(all_threads)
        machine.set_epb_all(EnergyPerformanceBias.BALANCED)
        for sock in machine.topology.sockets:
            machine.frequency.set_uncore_auto(sock.socket_id)
            self._index[sock.socket_id] = len(self._steps[sock.socket_id]) - 1
            self._set_socket_frequency(sock.socket_id)

    def _set_socket_frequency(self, socket_id: int) -> None:
        freq = self._steps[socket_id][self._index[socket_id]]
        socket = self.machine.topology.socket(socket_id)
        for core in socket.cores:
            self.machine.frequency.set_core_frequency(
                socket_id, core.core_id, freq, self.machine.time_s
            )

    def socket_frequency_ghz(self, socket_id: int) -> float:
        """The frequency the governor currently applies to a socket."""
        return self._steps[socket_id][self._index[socket_id]]

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Walk the frequency ladder once per period."""
        if not self._initialized:
            self._apply_initial_state()
            self._initialized = True
            self._decision.restart(now_s)
            return
        if not self._decision.due(now_s):
            return
        self._decision.restart(now_s)

        for sock in self.machine.topology.sockets:
            sid = sock.socket_id
            utilization = self.engine.utilization.utilization(sid, now_s)
            index = self._index[sid]
            if utilization > self.up_threshold:
                # Classic ondemand: jump straight to the top on pressure.
                index = len(self._steps[sid]) - 1
            elif utilization < self.down_threshold and index > 0:
                index -= 1
            if index != self._index[sid]:
                self._index[sid] = index
                self._set_socket_frequency(sid)
                self.machine.note_configuration_switch(sid)

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        Between decision deadlines :meth:`on_tick` is a pure deadline
        comparison, so the next decision time bounds the span.
        """
        if not self._initialized:
            return None  # the next tick applies the initial state
        return self._decision.next_due_s, {}

    def annotate_sample(self) -> SampleAnnotations:
        """No annotations: pinned by the pre-registry A/B goldens.

        The governor *could* annotate its per-socket ladder position, but
        the refactor contract is bit-identical results for the original
        three policies — their sample annotations stay empty.
        """
        return SampleAnnotations()
