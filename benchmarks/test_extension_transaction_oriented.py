"""Extension — why the paper restricts the ECL to data-oriented systems.

Paper §5.3: in transaction-oriented architectures, spinlocks "often occur
and tamper with our performance metric (instructions retired)".  This
bench quantifies the tampering: for a lock-manager-latched TATP workload,
configurations are evaluated twice — once by *useful* throughput (ground
truth) and once by the hardware counters a runtime ECL would read
(spinning threads retire instructions without progress).  The counter
view wildly overrates contended many-core configurations and picks a
different, much worse "optimal" configuration.
"""

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import ActiveCore, SocketLoad
from repro.profiles.configuration import ConfigurationMeasurement
from repro.profiles.evaluate import build_profile, measure_configuration
from repro.profiles.generator import ConfigurationGenerator
from repro.profiles.profile import EnergyProfile
from repro.workloads.toa import TRANSACTION_ORIENTED_CHARACTERISTICS

from _shared import heading


def build_views():
    """(truth profile, counter-view profile) for the latched workload."""
    machine = Machine(seed=15)
    chars = TRANSACTION_ORIENTED_CHARACTERISTICS
    truth = build_profile(machine, 0, chars)

    # Counter view: identical configurations, but the performance score is
    # what the instruction counters report — including spin retirement.
    generator = ConfigurationGenerator(machine.topology, machine.params, 0)
    counter_view = EnergyProfile(generator.generate())
    for configuration in counter_view.configurations():
        base = measure_configuration(machine, configuration, chars)
        freq_map = dict(configuration.core_frequencies)
        siblings: dict[int, int] = {}
        for tid in configuration.active_threads:
            core = machine.topology.core_of(tid)
            siblings[core.core_id] = siblings.get(core.core_id, 0) + 1
        cores = [
            ActiveCore(0, cid, freq_map[cid], count)
            for cid, count in sorted(siblings.items())
        ]
        perf = machine.perf_model.resolve(
            cores, configuration.uncore_ghz, SocketLoad(chars, None)
        )
        counter_view.record(
            configuration,
            ConfigurationMeasurement(
                power_w=base.power_w,
                performance_score=perf.retired_ips,
                measured_at_s=0.0,
            ),
        )
    return truth, counter_view


def test_extension_transaction_oriented(run_once):
    truth, counter_view = run_once(build_views)

    heading("Extension §5.3 — spin-polluted counters vs useful throughput")
    true_opt = truth.most_efficient()
    seen_opt = counter_view.most_efficient()
    print(
        f"true optimum        : {true_opt.configuration.describe():>20}  "
        f"{true_opt.measurement.performance_score:.3e} useful instr/s"
    )
    print(
        f"counter-view optimum: {seen_opt.configuration.describe():>20}  "
        f"{seen_opt.measurement.performance_score:.3e} 'retired' instr/s"
    )
    # How badly would the counter-picked configuration actually perform?
    actual = truth.entry(seen_opt.configuration).measurement
    print(
        f"counter pick's true useful throughput: "
        f"{actual.performance_score:.3e} instr/s @ {actual.power_w:.1f} W"
    )
    inflation = (
        seen_opt.measurement.performance_score / actual.performance_score
    )
    print(f"counter inflation on the picked configuration: ×{inflation:.1f}")
    true_eff = true_opt.measurement.energy_efficiency
    picked_eff = actual.energy_efficiency
    print(
        f"efficiency loss from trusting the counters: "
        f"{1 - picked_eff / true_eff:.1%}"
    )

    # The counters lie under contention (severalfold inflation)...
    assert inflation > 3.0
    # ...which makes the runtime ECL pick a different configuration...
    assert seen_opt.configuration != true_opt.configuration
    # ...with far more active threads than the true latch-friendly optimum...
    assert (
        seen_opt.configuration.thread_count
        > true_opt.configuration.thread_count
    )
    # ...and a large real efficiency loss.
    assert picked_eff < 0.6 * true_eff
