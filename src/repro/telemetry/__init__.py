"""Run observability: event tracing, phase profiling, metrics export.

The runner's phased tick pipeline (arrivals → control → engine step →
completions → sampling) exposes observer hooks; this package puts
first-class instrumentation behind them:

* :class:`~repro.telemetry.trace.TraceRecorder` — a bounded, structured
  per-tick event stream (arrivals, policy reconfigurations with
  before/after hardware control state, completions, samples) with JSONL
  export;
* :class:`~repro.telemetry.phases.PhaseTimingObserver` — wall-time
  attribution across the five pipeline phases of one run;
* :mod:`~repro.telemetry.export` — suite-level summary tables
  (CSV / markdown) over :class:`~repro.sim.metrics.RunResult` objects,
  cache-directory loading, and markdown reports rendered from a trace.

Everything here is observation-only: attaching any of it must not change
a single float of the simulation (the A/B goldens pin that).  The CLI
front ends are ``repro run --trace PATH --timings`` and ``repro
report``.
"""

from repro.telemetry.export import (
    cached_results,
    render_trace_report,
    summary_csv,
    summary_table_markdown,
    trace_samples_csv,
    write_summary_csv,
)
from repro.telemetry.phases import (
    PIPELINE_PHASES,
    PhaseTimingObserver,
    PhaseTimings,
)
from repro.telemetry.trace import TraceRecorder, control_state, read_trace

__all__ = [
    "TraceRecorder",
    "control_state",
    "read_trace",
    "PIPELINE_PHASES",
    "PhaseTimingObserver",
    "PhaseTimings",
    "cached_results",
    "render_trace_report",
    "summary_csv",
    "summary_table_markdown",
    "trace_samples_csv",
    "write_summary_csv",
]
