"""Query banks: struct-of-arrays blocks of single-stage modeled queries.

A :class:`QueryBank` is the columnar counterpart of a list of
:class:`~repro.dbms.queries.Query` objects: ``count`` consecutive query
ids, each a single stage of ``fan_out`` modeled WORK messages, stored as
parallel numpy arrays.  Workloads fabricate banks on the vectorized load
path (:meth:`~repro.workloads.base.Workload.make_modeled_bank`), the
engine routes them via :meth:`~repro.dbms.engine.DBMSEngine.submit_bank`,
and the messages live out their life in the hubs' compact columns —
no per-message Python objects exist unless a migration evicts them.

Banks are restricted by construction to what the compact plane can
represent bit-identically: single stage, modeled costs, no workload
characteristics tag (untagged messages blend under the socket's default
characteristics, exactly like the scalar modeled KV/TATP paths).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import SimulationError


class QueryView:
    """Read-only per-query view into a bank (observer compatibility)."""

    __slots__ = ("query_id", "arrival_s", "coordinator_socket")

    def __init__(
        self, query_id: int, arrival_s: float, coordinator_socket: int
    ) -> None:
        self.query_id = query_id
        self.arrival_s = arrival_s
        self.coordinator_socket = coordinator_socket


class QueryBank:
    """A block of ``count`` single-stage modeled queries, as columns.

    Message ``j`` of query ``i`` (ids ``first_query_id + i``) targets
    ``targets[i * fan_out + j]`` with cost
    ``(instructions[...], bytes_accessed[...])``; the message axis is
    laid out query-major, matching the order the scalar path would
    submit the per-query message lists.
    """

    __slots__ = (
        "first_query_id",
        "fan_out",
        "arrivals_s",
        "coordinators",
        "targets",
        "instructions",
        "bytes_accessed",
    )

    def __init__(
        self,
        first_query_id: int,
        fan_out: int,
        arrivals_s: np.ndarray,
        coordinators: np.ndarray,
        targets: np.ndarray,
        instructions: np.ndarray,
        bytes_accessed: np.ndarray,
    ) -> None:
        count = int(arrivals_s.size)
        if fan_out <= 0:
            raise SimulationError(f"bank fan_out must be > 0, got {fan_out}")
        if coordinators.size != count:
            raise SimulationError("bank coordinator column length mismatch")
        if (
            targets.size != count * fan_out
            or instructions.size != count * fan_out
            or bytes_accessed.size != count * fan_out
        ):
            raise SimulationError("bank message column length mismatch")
        self.first_query_id = first_query_id
        self.fan_out = fan_out
        self.arrivals_s = arrivals_s
        self.coordinators = coordinators
        self.targets = targets
        self.instructions = instructions
        self.bytes_accessed = bytes_accessed

    @property
    def count(self) -> int:
        """Number of queries in the bank."""
        return int(self.arrivals_s.size)

    def query_views(self) -> Iterator[QueryView]:
        """Yield per-query views, in arrival (= id) order."""
        first = self.first_query_id
        arrivals = self.arrivals_s
        coordinators = self.coordinators
        for i in range(arrivals.size):
            yield QueryView(first + i, float(arrivals[i]), int(coordinators[i]))
