"""The spike load profile (Fig. 13).

"The spike profile ... covers the full range of load situations" and
includes a deliberate overload phase starting around 80 s — the paper
observed that the baseline stayed overloaded for ~50 s while the ECL
recovered in ~20 s (the ECL's bandwidth-friendly configuration has *more*
throughput than the all-cores baseline on the memory-bound KV workload).
The default run length is the paper's 3 minutes.
"""

from __future__ import annotations

from repro.loadprofiles.base import LoadProfile, SegmentProfile


def spike_profile(duration_s: float = 180.0, overload_fraction: float = 1.25) -> LoadProfile:
    """Build the spike profile, scaled to ``duration_s``.

    Shape (fractions of the nominal peak):
    a low-load start, a steady climb through 50 % and 100 %, an overload
    plateau at ``overload_fraction``, then a fall back through medium and
    low load to idle.
    """
    scale = duration_s / 180.0
    points = [
        (0.0, 0.05),
        (10.0, 0.10),
        (30.0, 0.35),
        (50.0, 0.60),
        (70.0, 0.95),
        (80.0, overload_fraction),
        (100.0, overload_fraction),
        (105.0, 0.70),
        (120.0, 0.50),
        (140.0, 0.25),
        (160.0, 0.10),
        (175.0, 0.02),
        (180.0, 0.0),
    ]
    return SegmentProfile(
        "spike", [(t * scale, f) for t, f in points]
    )
