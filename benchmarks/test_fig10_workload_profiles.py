"""Fig. 10 — energy profiles under contention + ruling zones.

Paper:
  (a) memory-bound scan: high core clocks are wasted, a high uncore clock
      is good for both performance and efficiency; ~40 % max savings;
  (b) atomic contention: the best configuration is two HyperThreads of
      one core at turbo with the lowest uncore — ~90 % energy savings and
      ~200 % response-time advantage over the all-cores baseline; the
      over-utilization zone disappears;
  (c) shared hash-table insert: the same effect at a smaller scale
      (~42 % savings, ~8 % response benefit).
"""

from repro.hardware.machine import Machine
from repro.profiles.evaluate import build_profile
from repro.profiles.zones import RulingZone, classify_zones, over_utilization_span
from repro.workloads.micro import (
    ATOMIC_CONTENTION,
    HASHTABLE_INSERT,
    MEMORY_BOUND,
)

from _shared import heading


def build_all():
    machine = Machine(seed=9)
    return {
        chars.name: build_profile(machine, 0, chars)
        for chars in (MEMORY_BOUND, ATOMIC_CONTENTION, HASHTABLE_INSERT)
    }


def summarize(profile):
    opt = profile.most_efficient()
    base = profile.baseline_entry()
    return {
        "optimal": opt.configuration,
        "saving": profile.max_rti_saving(),
        "response_advantage": opt.measurement.performance_score
        / base.measurement.performance_score,
        "over_span": over_utilization_span(profile),
        "zones": classify_zones(profile),
    }


def test_fig10_workload_profiles(run_once):
    profiles = run_once(build_all)

    heading("Fig. 10 — energy profiles for contended workloads")
    summaries = {name: summarize(p) for name, p in profiles.items()}
    for name, s in summaries.items():
        zone_counts = {
            zone: sum(1 for z in s["zones"].values() if z is zone)
            for zone in RulingZone
        }
        print(
            f"{name:>18}: optimal {s['optimal'].describe():>20}  "
            f"saving {s['saving']:5.1%}  response ×{s['response_advantage']:.2f}  "
            f"zones U/O/V = {zone_counts[RulingZone.UNDER_UTILIZATION]}/"
            f"{zone_counts[RulingZone.OPTIMAL]}/"
            f"{zone_counts[RulingZone.OVER_UTILIZATION]}"
        )

    # (a) memory-bound: high uncore optimal, low/medium core clocks, ~40 %.
    mem = summaries["memory-bound"]
    assert mem["optimal"].uncore_ghz == 3.0
    assert mem["optimal"].average_core_ghz <= 2.0
    assert 0.30 < mem["saving"] < 0.70
    assert mem["over_span"] < 0.05  # the optimum is also the peak

    # (b) atomic contention: 2 HT of one core at turbo, lowest uncore.
    atomic = summaries["atomic-contention"]
    assert atomic["optimal"].thread_count == 2
    assert atomic["optimal"].core_count == 1
    assert atomic["optimal"].average_core_ghz == 3.1
    assert atomic["optimal"].uncore_ghz == 1.2
    assert atomic["saving"] > 0.80  # paper: ~90 %
    assert 2.0 < atomic["response_advantage"] < 6.0  # paper: ~3×
    assert atomic["over_span"] < 0.02  # no over-utilization zone

    # (c) hash-table insert: same shape, smaller scale.
    hashtable = summaries["hashtable-insert"]
    assert hashtable["optimal"].core_count == 1
    assert hashtable["optimal"].uncore_ghz == 1.2
    assert 0.40 < hashtable["saving"] < 0.80  # paper: 42 %
    assert 1.0 < hashtable["response_advantage"] < 1.5  # paper: +8 %
    assert hashtable["saving"] < atomic["saving"]
    assert hashtable["response_advantage"] < atomic["response_advantage"]
