"""The ``ecl-consolidate`` policy: ECL plus ECL-driven socket drain.

The plain ECL can park every *worker* of a lightly loaded socket, but
the socket's uncore must keep clocking as long as remote sockets may
touch its memory (the Fig. 5 cross-socket dependency) — so the deepest
energy state the hardware model implements, package sleep with the LLC
power-gated, stays out of reach.  This policy composes the full
:class:`~repro.ecl.controller.EnergyControlLoop` with a placement
planner (:mod:`repro.placement`):

* on every ECL interval it snapshots per-socket load and asks the
  planner for migrations; proposed moves go through the engine's
  migration protocol (quiesce → charged transfer → resume);
* once a socket holds no partitions and owes no queued or buffered
  work, it is *drained*: query intake is redirected, every hardware
  thread parks, the socket-level ECL stands down, and the C-state model
  is told the socket's memory is vacated — lifting the uncore
  dependency so the package falls into sleep;
* when load later exceeds the planner's spread threshold, the drained
  socket is woken (threads unparked, intake restored, loop resumed) and
  partitions migrate back.

With the default ``static`` run placement the planner defaults to
``consolidate``; any other configured placement (e.g. ``balance``) is
used as-is, making the policy a generic "ECL + data movement" harness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.placement import (
    PlacementPolicy,
    PlacementView,
    SocketView,
    build_placement,
)
from repro.sim.metrics import SampleAnnotations

if TYPE_CHECKING:
    from repro.dbms.engine import DatabaseEngine
    from repro.ecl.controller import EnergyControlLoop
    from repro.sim.runner import RunConfiguration


class EclConsolidatePolicy:
    """ECL + consolidation-driven package sleep (see module docstring)."""

    def __init__(
        self,
        engine: "DatabaseEngine",
        inner: "EnergyControlLoop",
        planner: PlacementPolicy,
        check_interval_s: float | None = None,
    ):
        self.engine = engine
        self.machine = engine.machine
        self.inner = inner
        self.planner = planner
        self.check_interval_s = check_interval_s or inner.params.interval_s
        #: First check one full interval in, when utilization data exists.
        self._next_check_s = self.check_interval_s
        #: Planning pause after a migration wave, in check intervals: the
        #: transfer's lump cost saturates the utilization window, and
        #: planning against that transient oscillates (pack, panic-spread,
        #: pack again).  Two intervals lets the window forget the wave.
        self.cooldown_intervals = 2
        self._drained: set[int] = set()
        #: Why :meth:`macro_view` last refused a span (telemetry).
        self.macro_cut: str = ""

    @classmethod
    def build(
        cls, engine: "DatabaseEngine", config: "RunConfiguration"
    ) -> "EclConsolidatePolicy":
        """Control-policy factory (see :mod:`repro.sim.policy`)."""
        # Imported lazily: repro.ecl.controller itself imports sim modules.
        from repro.ecl.controller import EnergyControlLoop

        inner = EnergyControlLoop.build(engine, config)
        if engine.placement.name == "static":
            planner = build_placement("consolidate")
        else:
            planner = engine.placement
        return cls(engine, inner, planner)

    # -- introspection ------------------------------------------------------

    @property
    def drained_sockets(self) -> frozenset[int]:
        """Sockets currently parked into package sleep."""
        return frozenset(self._drained)

    # -- main loop ----------------------------------------------------------

    def on_tick(self, now_s: float, dt_s: float) -> None:
        """Inner ECL first, then placement planning and drain bookkeeping."""
        self.inner.on_tick(now_s, dt_s)
        if now_s + 1e-12 >= self._next_check_s:
            self._next_check_s += self.check_interval_s
            self._replan(now_s)
        self._settle()

    def annotate_sample(self) -> SampleAnnotations:
        return self.inner.annotate_sample()

    def macro_view(
        self, now_s: float, dt_s: float
    ) -> tuple[float, dict[int, float]] | None:
        """Steady-state view for the macro-stepping runner.

        Active migrations advance state machinery every tick, so they
        pin the run to live ticks.  Otherwise the inner ECL's view is
        tightened by the next placement check.  ``_settle`` gets no
        horizon but does veto spans: within a span no messages move and
        no partitions migrate, so parkability cannot *arise* on a
        skipped tick — but it can arise between the last live control
        phase and this one (a migration wave landing during that tick's
        engine phase empties the hub), so a pending park must refuse
        the span and run on this exact tick, as the per-tick path would.
        """
        if self.engine.migrations.active_count:
            self.macro_cut = "migration"
            return None
        if self._parkable_socket() is not None:
            self.macro_cut = "drain"
            return None
        view = self.inner.macro_view(now_s, dt_s)
        if view is None:
            self.macro_cut = self.inner.macro_cut
            return None
        horizon, charges = view
        return min(horizon, self._next_check_s), charges

    def macro_step_tick(self, now_s: float, dt_s: float) -> bool:
        """Replay one hardware-inert control tick inside a macro span.

        Mirrors :meth:`on_tick` order: the inner ECL's replay first,
        then (the placement check never fires here — it is refused
        outright) the drain settle pass, which is idempotent and parks a
        socket only at the exact tick the live path would.  Active
        migrations and due placement checks force the tick live.
        """
        if self.engine.migrations.active_count:
            return False
        if now_s + 1e-12 >= self._next_check_s:
            return False  # the placement check replans / migrates
        if not self.inner.macro_step_tick(now_s, dt_s):
            return False
        self._settle()
        return True

    def macro_replay(self, start_s: float, dt_s: float, n_ticks: int) -> None:
        """Forward the inner ECL's system-check replay (the placement
        check itself bounds the horizon, so it never fires in-span)."""
        self.inner.macro_replay(start_s, dt_s, n_ticks)

    # -- planning -----------------------------------------------------------

    def _view(self, now_s: float) -> PlacementView:
        sockets = []
        for sid in sorted(self.engine.hubs):
            hub = self.engine.hubs[sid]
            sockets.append(
                SocketView(
                    socket_id=sid,
                    partition_ids=tuple(
                        p.partition_id
                        for p in self.engine.partitions.partitions_on_socket(sid)
                    ),
                    utilization=self.engine.utilization.utilization(sid, now_s),
                    pending_instructions=hub.pending_cost_instructions(),
                    active=sid not in self._drained,
                )
            )
        return PlacementView(time_s=now_s, sockets=tuple(sockets))

    def _replan(self, now_s: float) -> None:
        if self.engine.migrations.active_count:
            return  # let the current wave land before planning the next
        requested = False
        for request in self.planner.plan(self._view(now_s)):
            if request.target_socket in self._drained:
                self._wake_socket(request.target_socket)
            if (
                self.engine.request_migration(
                    request.partition_id, request.target_socket
                )
                is not None
            ):
                requested = True
        if requested:
            self._next_check_s = (
                now_s + self.cooldown_intervals * self.check_interval_s
            )

    # -- drain / wake -------------------------------------------------------

    def _parkable_socket(self) -> int | None:
        """First socket that has finished draining and awaits its park."""
        for sid, hub in self.engine.hubs.items():
            if (
                sid not in self._drained
                and not hub.partition_ids
                and not hub.pending_messages
                and not self.engine.router.buffered_from(sid)
            ):
                return sid
        return None

    def _settle(self) -> None:
        """Park sockets that have finished draining."""
        if self.engine.migrations.active_count:
            return
        while (sid := self._parkable_socket()) is not None:
            self._park_socket(sid)

    def _park_socket(self, socket_id: int) -> None:
        self.inner.sockets[socket_id].set_drained(True)
        self.engine.set_socket_online(socket_id, False)
        self.machine.apply_socket_threads(socket_id, ())
        self.machine.cstates.set_memory_vacated(socket_id, True)
        self._drained.add(socket_id)

    def _wake_socket(self, socket_id: int) -> None:
        self._drained.discard(socket_id)
        self.machine.cstates.set_memory_vacated(socket_id, False)
        socket = self.machine.topology.socket(socket_id)
        # Full wake; the resumed socket-level loop trims from here.
        self.machine.apply_socket_threads(socket_id, set(socket.thread_ids()))
        self.engine.set_socket_online(socket_id, True)
        self.inner.sockets[socket_id].set_drained(False)
