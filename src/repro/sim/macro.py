"""Span-cut telemetry for the macro-stepping runner.

Macro stepping alternates live ticks with analytic spans (see
:meth:`~repro.sim.runner.SimulationRunner._try_macro_span`).  Every
span *attempt* — made after each live tick — either commits some
number of skipped ticks or is refused outright, and in both cases
exactly one component bounded it: the control policy's span program,
the sampling deadline, another observer, the machine's internal event
horizon (turbo dwell), the load generator's next arrival, the engine's
steady-state validity fold, or simply the end of the run.

:class:`SpanCutStats` attributes each attempt to that component and
keeps a histogram of committed span lengths.  The runner exposes the
result through ``span_cut_stats()``; the trace recorder forwards it
into the report (``repro report``) and the throughput benchmark embeds
it in ``BENCH_tick_throughput.json``.  The point of the breakdown is
diagnostic: when throughput stalls, the biggest counter names the
component whose horizon to widen next.
"""

from __future__ import annotations

#: Committed span lengths are bucketed into these inclusive ranges
#: (upper bound ``None`` = unbounded).  Composite spans can absorb a
#: single straggler tick right before a deadline, so lengths start at 1.
LENGTH_BUCKETS: tuple[tuple[int, int | None], ...] = (
    (1, 9),
    (10, 29),
    (30, 99),
    (100, 299),
    (300, None),
)


def _bucket_label(low: int, high: int | None) -> str:
    return f"{low}-{high}" if high is not None else f"{low}+"


def bucket_for(length: int) -> str:
    """The histogram bucket label for a committed span length."""
    for low, high in LENGTH_BUCKETS:
        if high is None or length <= high:
            return _bucket_label(low, high)
    raise AssertionError("unreachable: last bucket is unbounded")


class SpanCutStats:
    """Mutable accumulator of span-attempt attribution for one run."""

    __slots__ = (
        "components", "policy_reasons", "lengths", "refusals", "replays"
    )

    def __init__(self) -> None:
        #: Attempts bounded by each component ("policy", "sampler",
        #: "observer", "machine", "loadgen", "engine", "run-end") —
        #: refusals and committed spans alike.
        self.components: dict[str, int] = {}
        #: Why the policy refused, by its ``macro_cut`` reason string.
        self.policy_reasons: dict[str, int] = {}
        #: Control ticks replayed *inside* composite spans, keyed by the
        #: ``macro_cut`` reason that would otherwise have forced a live
        #: tick (see ``ControlPolicy.macro_step_tick``).
        self.replays: dict[str, int] = {}
        #: Committed span lengths, bucketed per :data:`LENGTH_BUCKETS`.
        self.lengths: dict[str, int] = {
            _bucket_label(low, high): 0 for low, high in LENGTH_BUCKETS
        }
        #: Attempts that committed nothing.
        self.refusals = 0

    def record_refusal(self, component: str, reason: str = "") -> None:
        """An attempt that skipped no ticks, bounded by ``component``."""
        self.refusals += 1
        self.components[component] = self.components.get(component, 0) + 1
        if reason:
            self.policy_reasons[reason] = (
                self.policy_reasons.get(reason, 0) + 1
            )

    def record_replay(self, reason: str) -> None:
        """A hardware-inert control tick replayed mid-span."""
        self.replays[reason] = self.replays.get(reason, 0) + 1

    def record_span(self, length: int, component: str) -> None:
        """A committed span of ``length`` ticks, bounded by ``component``."""
        self.components[component] = self.components.get(component, 0) + 1
        self.lengths[bucket_for(length)] += 1

    def as_dict(self, spans: int, ticks_skipped: int) -> dict:
        """JSON-ready summary (sorted for stable serialization)."""
        return {
            "spans": spans,
            "ticks_skipped": ticks_skipped,
            "refusals": self.refusals,
            "cut_by": dict(
                sorted(self.components.items(), key=lambda kv: -kv[1])
            ),
            "policy_reasons": dict(
                sorted(self.policy_reasons.items(), key=lambda kv: -kv[1])
            ),
            "in_span_replays": dict(
                sorted(self.replays.items(), key=lambda kv: -kv[1])
            ),
            "span_lengths": dict(self.lengths),
        }
