"""Queries: multi-stage message graphs and their completion tracking.

A query fans out into stage-0 messages (one per target partition); when
every message of a stage has been processed, the next stage is dispatched
(e.g. a join/aggregation step at a coordinator partition).  When the last
stage completes, the query's latency is the interval from arrival to the
final message completion — the metric the system-level ECL supervises
against the user-defined limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.dbms.messages import Message

_query_ids = itertools.count()


def take_query_ids(count: int) -> int:
    """Reserve ``count`` consecutive query ids; returns the first.

    Bank fabrication consumes the same global id stream as per-object
    :class:`Query` construction (one id per query, in arrival order), so
    a vectorized run assigns exactly the ids the scalar run would.
    """
    first = next(_query_ids)
    for _ in range(count - 1):
        next(_query_ids)
    return first


@dataclass
class QueryStage:
    """One stage: messages dispatched together once the prior stage ends."""

    messages: list[Message]

    def __post_init__(self) -> None:
        if not self.messages:
            raise SimulationError("a query stage needs at least one message")


@dataclass
class Query:
    """One client query: an ordered list of stages."""

    arrival_s: float
    stages: list[QueryStage]
    coordinator_socket: int = 0
    query_id: int = field(default_factory=lambda: next(_query_ids))

    def __post_init__(self) -> None:
        if not self.stages:
            raise SimulationError("a query needs at least one stage")
        for stage in self.stages:
            for message in stage.messages:
                message.query_id = self.query_id
                message.created_at_s = self.arrival_s


@dataclass(frozen=True)
class QueryCompletion:
    """Completion record of one query."""

    query_id: int
    arrival_s: float
    completion_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end query latency."""
        return self.completion_s - self.arrival_s


class QueryTracker:
    """Tracks outstanding messages of in-flight queries.

    The engine calls :meth:`dispatch` on arrival (getting the stage-0
    messages to route) and :meth:`on_message_done` per processed message
    (getting either follow-up messages to route or a completion record).
    """

    def __init__(self) -> None:
        self._queries: dict[int, Query] = {}
        self._stage_index: dict[int, int] = {}
        self._remaining: dict[int, int] = {}
        self.completed_count = 0
        self.dispatched_count = 0
        # Dense store for bank-registered (compact, single-stage) queries:
        # remaining-message counts and arrival times indexed by
        # ``query_id - _bank_base``.  A slot of 0 in ``_bank_remaining``
        # means absent-or-completed; dict-registered queries leave holes.
        self._bank_base: int | None = None
        self._bank_remaining = np.zeros(0, dtype=np.int32)
        self._bank_arrivals = np.zeros(0, dtype=np.float64)
        self._bank_in_flight = 0

    @property
    def in_flight(self) -> int:
        """Number of queries currently being processed."""
        return len(self._queries) + self._bank_in_flight

    def dispatch(self, query: Query) -> list[Message]:
        """Register a query and return its stage-0 messages.

        Raises:
            SimulationError: if the query id is already in flight.
        """
        if query.query_id in self._queries:
            raise SimulationError(f"query {query.query_id} already dispatched")
        self._queries[query.query_id] = query
        self._stage_index[query.query_id] = 0
        first = query.stages[0]
        self._remaining[query.query_id] = len(first.messages)
        self.dispatched_count += 1
        return list(first.messages)

    def register_bank(
        self, first_query_id: int, fan_out: int, arrivals_s: np.ndarray
    ) -> None:
        """Register a block of single-stage compact queries.

        The block covers ``arrivals_s.size`` consecutive query ids
        starting at ``first_query_id``, each fanning out into ``fan_out``
        messages.  Compact queries carry no :class:`Query` object; their
        completion is settled per drained run via :meth:`on_compact_done`
        (or per materialized message via :meth:`on_message_done`, e.g.
        after a migration evicted their messages into the object lane).
        """
        n = int(arrivals_s.size)
        if n == 0:
            return
        if self._bank_base is None:
            self._bank_base = first_query_id
        lo = first_query_id - self._bank_base
        if lo < 0:
            raise SimulationError("bank query ids must be monotone")
        hi = lo + n
        if hi > self._bank_remaining.size:
            capacity = max(1024, 2 * self._bank_remaining.size)
            while capacity < hi:
                capacity *= 2
            remaining = np.zeros(capacity, dtype=np.int32)
            remaining[: self._bank_remaining.size] = self._bank_remaining
            arrivals = np.zeros(capacity, dtype=np.float64)
            arrivals[: self._bank_arrivals.size] = self._bank_arrivals
            self._bank_remaining = remaining
            self._bank_arrivals = arrivals
        remaining = self._bank_remaining
        if n <= 32:
            overlap = any(remaining[slot] for slot in range(lo, hi))
        else:
            overlap = bool(remaining[lo:hi].any())
        if overlap:
            raise SimulationError(
                f"bank block at query {first_query_id} overlaps in-flight ids"
            )
        self._bank_remaining[lo:hi] = fan_out
        self._bank_arrivals[lo:hi] = arrivals_s
        self._bank_in_flight += n
        self.dispatched_count += n

    def on_compact_done(
        self, query_ids, now_s: float
    ) -> list[QueryCompletion]:
        """Account one drained compact run of bank-registered messages.

        ``query_ids`` is the run's id column — a plain list (what the
        hub's small-run consume hands back) or a numpy array.  Decrements
        the remaining-message counts per query and returns the
        completions in the order the per-message path would emit them:
        each finished query completes at its *last* message of the run,
        so completions are ordered by last-occurrence position.
        """
        base = self._bank_base
        if base is None:
            raise SimulationError("compact run before any bank registration")
        if len(query_ids) <= 32:
            # Short runs: the scalar decrement loop *is* the reference
            # semantics (a query completes at its last message, i.e. the
            # decrement that reaches zero) — and numpy's unique/argsort
            # overhead dwarfs it at this size.
            remaining = self._bank_remaining
            size = remaining.size
            done_list: list[int] = []
            if type(query_ids) is not list:
                query_ids = query_ids.tolist()
            for qid in query_ids:
                slot = qid - base
                if not 0 <= slot < size or not remaining[slot]:
                    raise SimulationError(
                        "message for unknown query in compact run"
                    )
                left = int(remaining[slot]) - 1
                remaining[slot] = left
                if not left:
                    done_list.append(qid)
            if not done_list:
                return []
            self._bank_in_flight -= len(done_list)
            self.completed_count += len(done_list)
            arrivals = self._bank_arrivals
            return [
                QueryCompletion(
                    query_id=qid,
                    arrival_s=float(arrivals[qid - base]),
                    completion_s=now_s,
                )
                for qid in done_list
            ]
        query_ids = np.asarray(query_ids, dtype=np.int64)
        reverse = query_ids[::-1]
        unique, rev_index, counts = np.unique(
            reverse, return_index=True, return_counts=True
        )
        index = unique - base
        remaining = self._bank_remaining
        if int(index[0]) < 0 or int(index[-1]) >= remaining.size:
            raise SimulationError("message for unknown query in compact run")
        left = remaining[index] - counts.astype(np.int32)
        if left.min() < 0:
            raise SimulationError("message for unknown query in compact run")
        remaining[index] = left
        done = left == 0
        finished = int(np.count_nonzero(done))
        if not finished:
            return []
        # Last occurrence in drain order = first occurrence in reverse.
        last_position = query_ids.size - 1 - rev_index[done]
        order = np.argsort(last_position)
        done_ids = unique[done][order]
        self._bank_in_flight -= finished
        self.completed_count += finished
        arrivals = self._bank_arrivals
        return [
            QueryCompletion(
                query_id=int(qid),
                arrival_s=float(arrivals[qid - base]),
                completion_s=now_s,
            )
            for qid in done_ids
        ]

    def on_message_done(
        self, message: Message, now_s: float
    ) -> tuple[list[Message], QueryCompletion | None]:
        """Account one processed message.

        Returns ``(followup_messages, completion)`` where at most one of
        the two is non-empty/None.  Unknown query ids raise
        :class:`SimulationError` (a message must never outlive its query).
        """
        qid = message.query_id
        if qid not in self._queries:
            # Bank-registered query whose message was materialized into
            # an object (e.g. evicted by a migration): settle it against
            # the dense store, one message at a time.
            base = self._bank_base
            slot = qid - base if base is not None else -1
            if 0 <= slot < self._bank_remaining.size and self._bank_remaining[slot]:
                left = int(self._bank_remaining[slot]) - 1
                self._bank_remaining[slot] = left
                if left:
                    return [], None
                self._bank_in_flight -= 1
                self.completed_count += 1
                return [], QueryCompletion(
                    query_id=qid,
                    arrival_s=float(self._bank_arrivals[slot]),
                    completion_s=now_s,
                )
            raise SimulationError(f"message for unknown query {qid}")
        self._remaining[qid] -= 1
        if self._remaining[qid] > 0:
            return [], None

        query = self._queries[qid]
        stage = self._stage_index[qid] + 1
        if stage < len(query.stages):
            self._stage_index[qid] = stage
            next_stage = query.stages[stage]
            for msg in next_stage.messages:
                msg.created_at_s = now_s
            self._remaining[qid] = len(next_stage.messages)
            return list(next_stage.messages), None

        del self._queries[qid]
        del self._stage_index[qid]
        del self._remaining[qid]
        self.completed_count += 1
        completion = QueryCompletion(
            query_id=qid, arrival_s=query.arrival_s, completion_s=now_s
        )
        return [], completion
