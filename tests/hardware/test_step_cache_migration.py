"""Step-cache correctness across placement and migration state changes.

The memoized step resolution keys on ``(frequency.version,
cstates.version, turbo dwell signature, throttle flag)`` plus the
declared load.  Everything the consolidation/migration path mutates —
thread parking, socket offline, memory vacate/restore, uncore halt —
bumps one of those versions, so a cached entry can never be served for a
socket whose placement state changed.  These tests pin that invariant:
a machine with the cache enabled must stay bit-identical to one with
the cache disabled through a full offline → online cycle, both at the
machine level and end-to-end through ``ecl-consolidate`` with
migrations in flight.
"""

from repro.hardware.machine import IDLE_CHARACTERISTICS, Machine
from repro.hardware.perfmodel import SocketLoad, WorkloadCharacteristics
from repro.loadprofiles import constant_profile
from repro.placement import MigrationRequest, round_robin_assignment
from repro.sim import RunConfiguration, SimulationRunner
from repro.workloads import KeyValueWorkload, WorkloadVariant

BUSY = WorkloadCharacteristics(
    name="busy", base_cpi=1.2, bytes_per_instr=0.5, miss_rate=0.002
)


def _socket_signature(step, sid):
    sres = step.sockets[sid]
    return (
        sres.performance,
        sres.power,
        sres.executed_instructions,
        sres.uncore_ghz,
        sres.uncore_halted,
        step.psu_power_w,
    )


class TestMachineOfflineOnline:
    """Cached and uncached machines agree through park/vacate cycles."""

    def _drive(self, machine: Machine):
        """One offline → online sequence; returns every step signature."""
        signatures = []
        sockets = [s.socket_id for s in machine.topology.sockets]
        threads_of = {
            sid: machine.topology.socket(sid).thread_ids() for sid in sockets
        }

        def step_both(dt=0.002, n=3):
            for _ in range(n):
                step = machine.step(dt)
                signatures.append(
                    tuple(_socket_signature(step, sid) for sid in sockets)
                )

        machine.set_socket_load(
            0, SocketLoad(characteristics=BUSY, demand_instructions_per_s=2e9)
        )
        machine.set_socket_load(
            1, SocketLoad(characteristics=BUSY, demand_instructions_per_s=1e9)
        )
        step_both()

        # Take socket 1 fully offline, as the consolidation drain does:
        # park its threads and vacate its memory.
        machine.cstates.set_active_threads(threads_of[0])
        machine.cstates.set_memory_vacated(1, True)
        machine.set_socket_load(
            1,
            SocketLoad(
                characteristics=IDLE_CHARACTERISTICS,
                demand_instructions_per_s=0.0,
            ),
        )
        step_both()

        # Bring it back online with the same loads as before the drain.
        # A stale cache entry keyed only on the load would resurface the
        # pre-drain resolution here.
        machine.cstates.set_memory_vacated(1, False)
        machine.cstates.set_active_threads(
            tuple(threads_of[0]) + tuple(threads_of[1])
        )
        machine.set_socket_load(
            1, SocketLoad(characteristics=BUSY, demand_instructions_per_s=1e9)
        )
        step_both()
        return signatures

    def test_cache_is_bit_identical_through_offline_online(self):
        cached = Machine(seed=3, step_cache_size=1024)
        uncached = Machine(seed=3, step_cache_size=0)
        assert self._drive(cached) == self._drive(uncached)
        # The cached run must actually have exercised the memoization,
        # otherwise this test proves nothing.
        assert cached.step_cache_stats["full_hits"] > 0

    def test_repeated_cycles_reuse_nothing_stale(self):
        """Several offline/online cycles with identical loads: the cache
        sees the same (load, socket) pairs under different placement
        states and must resolve each under its own version key."""
        cached = Machine(seed=7, step_cache_size=1024)
        uncached = Machine(seed=7, step_cache_size=0)
        for _ in range(3):
            assert self._drive(cached) == self._drive(uncached)


class _MoveBackPlanner:
    """First pack everything onto socket 0, then demand socket 1 back."""

    name = "move-back"

    def __init__(self):
        self.phase = 0

    def initial_assignment(self, partition_count, socket_ids):
        return round_robin_assignment(partition_count, socket_ids)

    def plan(self, view):
        self.phase += 1
        if self.phase == 1:
            return [
                MigrationRequest(pid, 0, reason="pack")
                for pid in view.socket(1).partition_ids
            ]
        return [MigrationRequest(0, 1, reason="spread")]


class TestConsolidateEndToEnd:
    """Cache on/off bit-identity through drain, sleep, and wake."""

    def _run(self, cache_size: int):
        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=constant_profile(duration_s=4.0, fraction=0.18),
            policy="ecl-consolidate",
            seed=0,
            step_cache_size=cache_size,
        )
        runner = SimulationRunner(config)
        runner.policy.planner = _MoveBackPlanner()
        runner.policy.cooldown_intervals = 0
        result = runner.run()
        return result, runner

    def test_migration_wave_cache_identity(self):
        cached, cached_runner = self._run(1024)
        uncached, _ = self._run(0)
        assert cached.total_energy_j == uncached.total_energy_j
        assert cached.queries_submitted == uncached.queries_submitted
        assert cached.queries_completed == uncached.queries_completed
        assert cached.latencies_s == uncached.latencies_s
        assert len(cached.samples) == len(uncached.samples)
        for a, b in zip(cached.samples, uncached.samples):
            assert a.time_s == b.time_s
            assert a.rapl_power_w == b.rapl_power_w
            assert a.psu_power_w == b.psu_power_w
        # The scenario really went offline and came back.
        assert cached_runner.policy.drained_sockets == frozenset()
        assert cached_runner.engine.migration_log
        assert cached_runner.machine.step_cache_stats["full_hits"] > 0
