"""Tests for the ecl-carbon policy (environment-modulated consolidation)."""

import pytest

from repro.cluster.carbon import (
    PACK_MAX,
    PACK_MIN,
    RATIO_CEILING,
    RATIO_FLOOR,
    SPREAD_MAX,
    THRESHOLD_GAP,
    CarbonAwareClusterController,
)
from repro.environment import ConstantSignal, Environment, StepSignal, make_environment
from repro.hardware.cluster import homogeneous_cluster
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner, registered_policies
from repro.workloads import KeyValueWorkload, WorkloadVariant


def carbon_config(environment=None, duration_s=2.0, nodes=2, **kwargs):
    return RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(duration_s=duration_s, fraction=0.1),
        policy="ecl-carbon",
        seed=0,
        cluster=homogeneous_cluster(nodes),
        environment=environment,
        **kwargs,
    )


class TestRegistration:
    def test_registered(self):
        assert "ecl-carbon" in registered_policies()

    def test_builds_carbon_controller(self):
        runner = SimulationRunner(carbon_config())
        assert isinstance(runner.policy, CarbonAwareClusterController)

    def test_build_wires_environment_and_duration(self):
        env = make_environment("diurnal-carbon", 2.0)
        runner = SimulationRunner(carbon_config(environment=env))
        policy = runner.policy
        assert policy.environment is env
        assert policy._carbon_ref == pytest.approx(
            env.carbon.average(0.0, 2.0)
        )


class TestWithoutEnvironment:
    def test_ratio_is_exactly_one(self):
        policy = SimulationRunner(carbon_config()).policy
        assert policy.signal_ratio(0.0) == 1.0
        assert policy.signal_ratio(1.5) == 1.0

    def test_thresholds_collapse_to_cluster_defaults(self):
        policy = SimulationRunner(carbon_config()).policy
        pack, spread = policy.planner_thresholds(0.0)
        assert pack == policy._base_pack
        assert spread == policy._base_spread

    def test_bit_identical_to_ecl_cluster(self):
        """No environment -> ratio 1.0 on every planning check -> the
        exact ecl-cluster trajectory, bitwise."""
        carbon = SimulationRunner(carbon_config(duration_s=4.0))
        cluster = SimulationRunner(
            RunConfiguration(
                workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
                profile=constant_profile(duration_s=4.0, fraction=0.1),
                policy="ecl-cluster",
                seed=0,
                cluster=homogeneous_cluster(2),
            )
        )
        a = carbon.run()
        b = cluster.run()
        assert a.total_energy_j == b.total_energy_j
        assert a.queries_completed == b.queries_completed
        assert a.latencies_s == b.latencies_s
        for x, y in zip(a.samples, b.samples):
            assert x == y


def _synthetic_controller(carbon_levels, price=0.12, duration_s=10.0):
    """A controller over a synthetic step-carbon environment."""
    env = Environment(
        name="synthetic",
        carbon=StepSignal(carbon_levels),
        price=ConstantSignal(price),
    )
    runner = SimulationRunner(
        carbon_config(environment=env, duration_s=duration_s)
    )
    return runner.policy


class TestModulation:
    def test_dirty_hours_raise_both_thresholds(self):
        # 100 then 300 around a 200 average: second half is dirty.
        policy = _synthetic_controller([(0.0, 100.0), (5.0, 300.0)])
        clean_pack, clean_spread = policy.planner_thresholds(2.0)
        dirty_pack, dirty_spread = policy.planner_thresholds(7.0)
        assert dirty_pack > policy._base_pack > clean_pack
        assert dirty_spread > clean_spread
        assert policy.signal_ratio(2.0) < 1.0 < policy.signal_ratio(7.0)

    def test_ratio_clamps(self):
        # A 1000x swing must clamp, not blow the thresholds up.  The
        # dwell is asymmetric so the run average sits near the low
        # level and the surge ratio far exceeds the ceiling.
        policy = _synthetic_controller([(0.0, 1.0), (9.0, 1000.0)])
        assert policy._ratio_of(
            policy.environment.carbon, 9.5, policy._carbon_ref
        ) == RATIO_CEILING
        assert policy._ratio_of(
            policy.environment.carbon, 2.0, policy._carbon_ref
        ) == RATIO_FLOOR

    def test_thresholds_stay_a_valid_planner_config(self):
        policy = _synthetic_controller([(0.0, 1.0), (9.0, 1000.0)])
        for t in (0.0, 2.0, 5.0, 9.0, 9.9):
            pack, spread = policy.planner_thresholds(t)
            assert PACK_MIN <= pack <= PACK_MAX
            assert spread <= SPREAD_MAX
            assert spread >= pack + THRESHOLD_GAP

    def test_replan_writes_thresholds_into_the_planner(self):
        env = make_environment("diurnal-carbon", 2.0)
        runner = SimulationRunner(carbon_config(environment=env))
        runner.run()
        policy = runner.policy
        # The planner holds whatever the most recent planning check set;
        # it must be a valid modulated pair.
        assert PACK_MIN <= policy.planner.pack_below <= PACK_MAX
        assert policy.planner.spread_above >= (
            policy.planner.pack_below + THRESHOLD_GAP
        )
