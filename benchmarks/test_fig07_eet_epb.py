"""Fig. 7 — EPB / energy-efficient-turbo time series.

Paper: after requesting the turbo frequency, a powersave/balanced EPB
dwells ~1 s at the nominal clock before entering turbo (a); the
performance EPB enters immediately (b); and for a memory-bound workload
the turbo step burns extra power without retiring more instructions (c).
"""

from repro.hardware.frequency import EnergyPerformanceBias
from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND

from _shared import heading


def time_series(epb: EnergyPerformanceBias, chars):
    """(time, instructions/s, power) samples around a turbo request at 1 s."""
    machine = Machine(seed=6)
    machine.apply_socket_threads(1, set())
    machine.set_idle(1)
    machine.apply_socket_threads(0, set(range(12)) | set(range(24, 36)))
    machine.set_epb_all(epb)
    machine.frequency.set_all_core_frequencies(1.2, 0.0)
    machine.frequency.set_uncore_frequency(0, 3.0)
    machine.set_socket_load(
        0, SocketLoad(characteristics=chars, demand_instructions_per_s=None)
    )
    samples = []
    dt = 0.05
    requested = False
    while machine.time_s < 3.0:
        if machine.time_s >= 1.0 and not requested:
            machine.frequency.set_all_core_frequencies(3.1, machine.time_s)
            requested = True
        step = machine.step(dt)
        socket = step.sockets[0]
        samples.append(
            (
                step.time_s,
                socket.performance.executed_ips,
                socket.power.socket_total_w,
            )
        )
    return samples


def rate_at(samples, t):
    return next(s[1] for s in samples if s[0] >= t)


def power_at(samples, t):
    return next(s[2] for s in samples if s[0] >= t)


def test_fig07_eet_epb(run_once):
    series = run_once(
        lambda: {
            "balanced/compute": time_series(
                EnergyPerformanceBias.BALANCED, COMPUTE_BOUND
            ),
            "performance/compute": time_series(
                EnergyPerformanceBias.PERFORMANCE, COMPUTE_BOUND
            ),
            "balanced/membound": time_series(
                EnergyPerformanceBias.BALANCED, MEMORY_BOUND
            ),
        }
    )

    heading("Fig. 7 — instructions/s and power around the turbo request (t=1s)")
    for name, samples in series.items():
        print(f"\n{name}:")
        for t in (0.5, 1.2, 1.8, 2.2, 2.5):
            print(
                f"  t={t:4.1f}s  {rate_at(samples, t):12.3e} instr/s  "
                f"{power_at(samples, t):6.1f} W"
            )

    balanced = series["balanced/compute"]
    performance = series["performance/compute"]
    membound = series["balanced/membound"]

    # (a) Balanced EPB: 2.6 GHz plateau until ~2 s, then the turbo step.
    assert rate_at(balanced, 1.5) > rate_at(balanced, 0.5) * 1.8  # 1.2→2.6
    assert rate_at(balanced, 2.4) > rate_at(balanced, 1.5) * 1.1  # 2.6→3.1
    # (b) Performance EPB: turbo immediately after the request.
    assert rate_at(performance, 1.3) > rate_at(balanced, 1.3) * 1.08
    # (c) Memory-bound: turbo adds power but no instructions.
    gain = rate_at(membound, 2.5) / rate_at(membound, 1.5)
    extra_power = power_at(membound, 2.5) - power_at(membound, 1.5)
    print(f"\nmem-bound turbo: perf gain ×{gain:.3f}, extra power {extra_power:+.1f} W")
    assert gain < 1.05
    assert extra_power > 2.0
