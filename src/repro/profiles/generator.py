"""The configuration generator (paper §4.2).

Enumerates a bounded set of configurations covering the configuration
spectrum of one socket:

* **thread sets** exploit core homogeneity — activating physical core 1
  is equivalent to activating core 2 — so only canonical *prefixes* of an
  activation order are generated (first one sibling per core, then the
  HyperThread siblings);
* **core frequencies** are an evenly spaced subset of the P-state ladder
  that always contains the lowest, the highest sustained (nominal), and
  the turbo frequency;
* **uncore frequencies** are an evenly spaced subset including both ends;
* optional **mixed core frequencies** add configurations whose active
  cores split between two adjacent frequencies of the subset;
* if the resulting count exceeds ``c_max``, hardware threads are
  aggregated into groups (both siblings of a core first, then multi-core
  groups), reducing the profile granularity exactly like the paper's
  example: 24 threads × 4 core freqs × 3 uncore freqs = 288 > 256 →
  sibling grouping → 144 configurations plus the idle configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfileError
from repro.hardware.presets import HaswellEPParameters
from repro.hardware.topology import Topology
from repro.profiles.configuration import Configuration


@dataclass(frozen=True)
class GeneratorParameters:
    """Tuning knobs of the configuration generator.

    Attributes:
        f_core: number of distinct core frequencies to cover.
        f_uncore: number of distinct uncore frequencies to cover.
        f_core_mixed: whether to add mixed-frequency configurations.
        c_max: maximum number of non-idle configurations.
    """

    f_core: int = 4
    f_uncore: int = 3
    f_core_mixed: bool = False
    c_max: int = 256

    def __post_init__(self) -> None:
        if self.f_core < 1 or self.f_uncore < 1:
            raise ProfileError("f_core and f_uncore must be >= 1")
        if self.c_max < 1:
            raise ProfileError(f"c_max must be >= 1, got {self.c_max}")


class ConfigurationGenerator:
    """Generates the configuration set for one socket."""

    def __init__(
        self,
        topology: Topology,
        params: HaswellEPParameters,
        socket_id: int,
        generator_params: GeneratorParameters | None = None,
    ):
        self.topology = topology
        self.params = params
        self.socket_id = socket_id
        self.generator_params = generator_params or GeneratorParameters()
        self._socket = topology.socket(socket_id)

    # -- frequency subsets ---------------------------------------------------

    def core_frequency_subset(self) -> tuple[float, ...]:
        """Evenly spaced core frequencies incl. lowest, nominal, turbo."""
        count = self.generator_params.f_core
        p = self.params
        ladder = [f for f in p.core_pstates_ghz if f <= p.core_nominal_ghz]
        anchors: list[float] = []
        if count == 1:
            return (p.core_nominal_ghz,)
        if count == 2:
            return (p.core_min_ghz, p.core_turbo_ghz)
        # Always include the turbo step; spread the rest over the
        # sustained ladder from the minimum to the nominal frequency.
        sustained = count - 1
        for i in range(sustained):
            idx = round(i * (len(ladder) - 1) / (sustained - 1)) if sustained > 1 else 0
            anchors.append(ladder[idx])
        anchors.append(p.core_turbo_ghz)
        return tuple(sorted(set(anchors)))

    def uncore_frequency_subset(self) -> tuple[float, ...]:
        """Evenly spaced uncore frequencies including both ends."""
        count = self.generator_params.f_uncore
        ladder = self.params.uncore_pstates_ghz
        if count == 1:
            return (ladder[-1],)
        if count >= len(ladder):
            return tuple(ladder)
        picks = {
            ladder[round(i * (len(ladder) - 1) / (count - 1))] for i in range(count)
        }
        return tuple(sorted(picks))

    # -- activation order ------------------------------------------------------

    def activation_units(self, group_threads: int) -> list[tuple[int, ...]]:
        """Thread-id units in activation order for a given group size.

        ``group_threads == 1`` activates single threads: one sibling per
        core first, then the HyperThread siblings.  Larger groups activate
        whole cores (both siblings) and, beyond that, bundles of cores.
        """
        tpc = self.topology.threads_per_core
        if group_threads == 1:
            first = [core.threads[0].global_id for core in self._socket.cores]
            units: list[tuple[int, ...]] = [(tid,) for tid in first]
            if tpc > 1:
                units.extend(
                    (core.threads[1].global_id,) for core in self._socket.cores
                )
            return units
        if group_threads % tpc != 0:
            raise ProfileError(
                f"group size {group_threads} must be a multiple of {tpc}"
            )
        cores_per_unit = group_threads // tpc
        units = []
        cores = list(self._socket.cores)
        for start in range(0, len(cores), cores_per_unit):
            chunk = cores[start : start + cores_per_unit]
            if len(chunk) < cores_per_unit:
                break
            unit: list[int] = []
            for core in chunk:
                unit.extend(core.thread_ids())
            units.append(tuple(unit))
        return units

    def _group_ladder(self) -> list[int]:
        """Group sizes to try, smallest first."""
        tpc = self.topology.threads_per_core
        cores = self._socket.core_count
        sizes = [1]
        multiple = 1
        while multiple <= cores:
            if cores % multiple == 0:
                sizes.append(multiple * tpc)
            multiple += 1
        return sizes

    # -- generation ----------------------------------------------------------------

    def count_for_group(self, group_threads: int) -> int:
        """Non-idle configuration count for a group size."""
        return len(self._generate_for_group(group_threads)) - 1

    def selected_group_size(self) -> int:
        """Smallest group size whose configuration count fits ``c_max``."""
        for size in self._group_ladder():
            if self.count_for_group(size) <= self.generator_params.c_max:
                return size
        return self._group_ladder()[-1]

    def generate(self) -> list[Configuration]:
        """Generate the configuration set (idle configuration first)."""
        return self._generate_for_group(self.selected_group_size())

    def _generate_for_group(self, group: int) -> list[Configuration]:
        """Generate the full set for a fixed group size."""
        units = self.activation_units(group)
        core_freqs = self.core_frequency_subset()
        uncore_freqs = self.uncore_frequency_subset()
        min_uncore = uncore_freqs[0]

        configs: list[Configuration] = [
            Configuration.idle(self.socket_id, min_uncore)
        ]
        for prefix_len in range(1, len(units) + 1):
            threads: set[int] = set()
            for unit in units[:prefix_len]:
                threads.update(unit)
            active_cores = sorted(
                {self.topology.core_of(tid).core_id for tid in threads}
            )
            for uncore in uncore_freqs:
                for freq in core_freqs:
                    configs.append(
                        Configuration.build(
                            self.socket_id,
                            threads,
                            {cid: freq for cid in active_cores},
                            uncore,
                        )
                    )
                if self.generator_params.f_core_mixed and len(active_cores) > 1:
                    for low, high in zip(core_freqs, core_freqs[1:]):
                        half = len(active_cores) // 2
                        mapping = {
                            cid: (low if i < half else high)
                            for i, cid in enumerate(active_cores)
                        }
                        configs.append(
                            Configuration.build(
                                self.socket_id, threads, mapping, uncore
                            )
                        )
        return configs
