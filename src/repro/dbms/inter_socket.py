"""Inter-socket communication threads.

The second level of the hierarchical message-passing layer (paper §3):
messages targeting partitions on a remote socket are not sent worker-to-
worker.  Instead, each socket runs one *communication thread* that

1. collects outbound messages destined for each remote socket into a
   per-destination buffer, and
2. periodically transfers whole buffers to the peer communication thread,
   which injects them into its local :class:`IntraSocketHub`.

Batching amortizes the interconnect cost; the transfer itself charges a
small instruction cost on both sides (the communication threads do real
work) and a latency of one flush interval, which the simulation realizes
by flushing once per tick.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import MessagingError
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, WorkCost

#: Instruction cost charged per transferred message on each side.
TRANSFER_INSTRUCTIONS_PER_MESSAGE = 150.0
#: Fixed instruction cost per buffer flush (syscall-free polling transfer).
TRANSFER_INSTRUCTIONS_PER_FLUSH = 600.0
#: Interconnect bytes per message (header + payload estimate).
TRANSFER_BYTES_PER_MESSAGE = 128.0


@dataclass(frozen=True)
class TransferStats:
    """Totals of one flush cycle, for cost accounting and tests."""

    messages_moved: int
    flushes: int
    cost_by_socket: dict[int, WorkCost]


class InterSocketRouter:
    """Outbound buffers and transfer logic for all communication threads."""

    def __init__(self, hubs: dict[int, IntraSocketHub]):
        if not hubs:
            raise MessagingError("router needs at least one socket hub")
        self._hubs = hubs
        #: (source socket, destination socket) -> buffered messages.
        self._outbound: dict[tuple[int, int], deque[Message]] = {}
        for src in hubs:
            for dst in hubs:
                if src != dst:
                    self._outbound[(src, dst)] = deque()
        self._partition_home: dict[int, int] = {}
        for socket_id, hub in hubs.items():
            for pid in hub.partition_ids:
                self._partition_home[pid] = socket_id
        self.total_messages_moved = 0

    # -- routing ------------------------------------------------------------

    def home_socket(self, partition_id: int) -> int:
        """Socket on which a partition is resident.

        Raises:
            MessagingError: for unknown partitions.
        """
        try:
            return self._partition_home[partition_id]
        except KeyError:
            raise MessagingError(f"unknown partition id {partition_id}") from None

    def route(self, source_socket: int, message: Message) -> bool:
        """Route a message from a socket toward its target partition.

        Local targets go straight into the local hub; remote targets are
        buffered for the next communication-thread flush.  Returns True
        when the message was delivered locally (False = buffered).
        """
        if source_socket not in self._hubs:
            raise MessagingError(f"unknown source socket {source_socket}")
        destination = self.home_socket(message.target_partition)
        if destination == source_socket:
            self._hubs[source_socket].enqueue(message)
            return True
        self._outbound[(source_socket, destination)].append(message)
        return False

    def buffered_count(self, source_socket: int, destination_socket: int) -> int:
        """Messages waiting in one outbound buffer."""
        key = (source_socket, destination_socket)
        if key not in self._outbound:
            raise MessagingError(f"no route {source_socket} -> {destination_socket}")
        return len(self._outbound[key])

    @property
    def total_buffered(self) -> int:
        """Messages waiting across all outbound buffers."""
        return sum(len(q) for q in self._outbound.values())

    # -- transfer ------------------------------------------------------------

    def flush(self) -> TransferStats:
        """Execute one transfer cycle of every communication thread.

        Moves every buffered message to its destination hub and returns
        the instruction/byte cost charged on each socket (sender and
        receiver sides both pay per message; each non-empty buffer pays
        one flush overhead on the sender).
        """
        cost_by_socket: dict[int, WorkCost] = {
            sid: WorkCost(instructions=0.0) for sid in self._hubs
        }
        moved = 0
        flushes = 0
        for (src, dst), buffer in self._outbound.items():
            if not buffer:
                continue
            flushes += 1
            count = len(buffer)
            while buffer:
                self._hubs[dst].enqueue(buffer.popleft())
            moved += count
            per_side = WorkCost(
                instructions=TRANSFER_INSTRUCTIONS_PER_MESSAGE * count,
                bytes_accessed=TRANSFER_BYTES_PER_MESSAGE * count,
            )
            cost_by_socket[src] = cost_by_socket[src] + per_side + WorkCost(
                instructions=TRANSFER_INSTRUCTIONS_PER_FLUSH
            )
            cost_by_socket[dst] = cost_by_socket[dst] + per_side
        self.total_messages_moved += moved
        return TransferStats(
            messages_moved=moved, flushes=flushes, cost_by_socket=cost_by_socket
        )
