"""Fig. 17–20 (appendix) — energy profiles for TATP and SSB.

Paper: the indexed variants of TATP and SSB resemble the compute-bound
profile (little contention), the non-indexed variants resemble the
memory-bound profile (bandwidth saturation); SSB needs a higher uncore
clock on average than TATP because more data ships between partitions.
"""

from repro.hardware.machine import Machine
from repro.profiles.evaluate import build_profile
from repro.workloads.kv import (
    INDEXED_CHARACTERISTICS as KV_INDEXED,
    NON_INDEXED_CHARACTERISTICS as KV_NON_INDEXED,
)
from repro.workloads.micro import COMPUTE_BOUND, MEMORY_BOUND
from repro.workloads.ssb import (
    INDEXED_CHARACTERISTICS as SSB_INDEXED,
    NON_INDEXED_CHARACTERISTICS as SSB_NON_INDEXED,
)
from repro.workloads.tatp import (
    INDEXED_CHARACTERISTICS as TATP_INDEXED,
    NON_INDEXED_CHARACTERISTICS as TATP_NON_INDEXED,
)

from _shared import heading


def build_profiles():
    machine = Machine(seed=13)
    chars = {
        "compute (ref)": COMPUTE_BOUND,
        "membound (ref)": MEMORY_BOUND,
        "tatp indexed": TATP_INDEXED,
        "tatp non-indexed": TATP_NON_INDEXED,
        "ssb indexed": SSB_INDEXED,
        "ssb non-indexed": SSB_NON_INDEXED,
        "kv indexed": KV_INDEXED,
        "kv non-indexed": KV_NON_INDEXED,
    }
    return {name: build_profile(machine, 0, c) for name, c in chars.items()}


def bandwidth_limited_share(profile):
    """Fraction of configurations whose measured perf hits a scan ceiling.

    Approximated via the skyline span: bandwidth-bound workloads have a
    flat performance frontier (many configurations deliver the same
    capped throughput)."""
    perfs = sorted(
        e.measurement.performance_score for e in profile.evaluated_entries()
        if not e.configuration.is_idle
    )
    peak = perfs[-1]
    near_peak = sum(1 for p in perfs if p > 0.93 * peak)
    return near_peak / len(perfs)


def test_fig17_20_benchmark_profiles(run_once):
    profiles = run_once(build_profiles)

    heading("Fig. 17–20 — TATP/SSB (and KV) energy profiles vs references")
    rows = {}
    for name, profile in profiles.items():
        opt = profile.most_efficient()
        rows[name] = {
            "optimal": opt.configuration,
            "flatness": bandwidth_limited_share(profile),
            "saving": profile.max_rti_saving(),
        }
        print(
            f"{name:>18}: optimal {opt.configuration.describe():>20}  "
            f"near-peak share {rows[name]['flatness']:5.1%}  "
            f"max saving {rows[name]['saving']:5.1%}"
        )

    # Non-indexed variants share the memory-bound shape: a *flat* frontier
    # (many configurations pinned at the bandwidth ceiling)...
    for bench in ("tatp", "ssb", "kv"):
        flat = rows[f"{bench} non-indexed"]["flatness"]
        pointed = rows[f"{bench} indexed"]["flatness"]
        assert flat > 2.0 * pointed, bench
        assert flat > 0.04
    assert rows["membound (ref)"]["flatness"] > 0.08
    assert rows["compute (ref)"]["flatness"] < 0.05

    # ...and their optima use the maximum uncore clock, like Fig. 10(a).
    for bench in ("tatp", "ssb", "kv"):
        assert rows[f"{bench} non-indexed"]["optimal"].uncore_ghz == 3.0, bench

    # Indexed variants stay below the maximum uncore clock (latency-bound,
    # "generally lower uncore frequency").
    for bench in ("tatp", "kv"):
        assert rows[f"{bench} indexed"]["optimal"].uncore_ghz < 3.0, bench

    # SSB ships more data between partitions: its indexed optimum needs at
    # least as much uncore clock as TATP's.
    assert (
        rows["ssb indexed"]["optimal"].uncore_ghz
        >= rows["tatp indexed"]["optimal"].uncore_ghz
    )
