"""Command-line interface: run experiments without writing code.

Examples::

    python -m repro run --workload kv-non-indexed --profile spike
    python -m repro run --workload tatp-indexed --profile twitter \\
        --policy baseline --duration 60
    python -m repro run --profile spike --trace trace.jsonl --timings
    python -m repro compare --workload kv-non-indexed --profile spike
    python -m repro report --trace trace.jsonl
    python -m repro report --cache-dir .repro_cache --format csv
    python -m repro profile --workload memory-bound
    python -m repro calibrate
"""

from __future__ import annotations

import argparse
import cProfile
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import comparison_table
from repro.ecl.calibration import MetaCalibrator
from repro.ecl.socket_ecl import EclParameters
from repro.environment import (
    Environment,
    get_environment,
    load_signal,
    make_environment,
    registered_environments,
)
from repro.errors import SimulationError
from repro.hardware.cluster import CLUSTER_PRESETS, ClusterSpec, build_cluster
from repro.hardware.machine import Machine
from repro.loadprofiles import get_profile, load_replay_trace, registered_profiles
from repro.loadprofiles import make_profile as build_registered_profile
from repro.loadprofiles.base import LoadProfile
from repro.placement import (
    DEFAULT_PLACEMENT,
    get_placement,
    registered_placements,
)
from repro.profiles.evaluate import build_profile
from repro.sim import (
    DEFAULT_POLICY,
    ExperimentSuite,
    RunConfiguration,
    SimulationRunner,
    get_policy,
    policy_grid,
    reference_policy,
    registered_policies,
    run_experiment,
)
from repro.sim.metrics import RunResult, energy_saving_fraction
from repro.telemetry import (
    PhaseTimingObserver,
    TraceRecorder,
    cached_results,
    read_trace,
    render_trace_report,
    summary_csv,
    summary_table_markdown,
    trace_samples_csv,
)
from repro.workloads import (
    KeyValueWorkload,
    SsbWorkload,
    TatpWorkload,
    WorkloadVariant,
)
from repro.workloads.base import Workload
from repro.workloads.micro import MICRO_WORKLOADS

WORKLOADS = {
    "kv-indexed": lambda: KeyValueWorkload(WorkloadVariant.INDEXED),
    "kv-non-indexed": lambda: KeyValueWorkload(WorkloadVariant.NON_INDEXED),
    "tatp-indexed": lambda: TatpWorkload(WorkloadVariant.INDEXED),
    "tatp-non-indexed": lambda: TatpWorkload(WorkloadVariant.NON_INDEXED),
    "ssb-indexed": lambda: SsbWorkload(WorkloadVariant.INDEXED),
    "ssb-non-indexed": lambda: SsbWorkload(WorkloadVariant.NON_INDEXED),
}

#: One-liners for ``repro run --list-workloads`` (keys match WORKLOADS).
WORKLOAD_DESCRIPTIONS = {
    "kv-indexed": "key-value point lookups through the index (§6.1)",
    "kv-non-indexed": "key-value lookups by partition scan (§6.1)",
    "tatp-indexed": "TATP telecom mix, index-supported (§6.1)",
    "tatp-non-indexed": "TATP telecom mix, scan-heavy (§6.1)",
    "ssb-indexed": "Star-Schema-Benchmark joins with index support (§6.1)",
    "ssb-non-indexed": "Star-Schema-Benchmark full-scan joins (§6.1)",
}

def print_policies() -> None:
    """List every registered control policy with its description."""
    names = registered_policies()
    width = max(len(name) for name in names)
    ref = reference_policy()
    for name in names:
        info = get_policy(name)
        marker = " (reference)" if name == ref else ""
        print(f"{name:<{width}}  {info.description}{marker}")


def print_placements() -> None:
    """List every registered placement policy with its description."""
    names = registered_placements()
    width = max(len(name) for name in names)
    for name in names:
        info = get_placement(name)
        marker = " (default)" if name == DEFAULT_PLACEMENT else ""
        print(f"{name:<{width}}  {info.description}{marker}")


def print_workloads() -> None:
    """List every benchmark workload with its description."""
    width = max(len(name) for name in WORKLOADS)
    for name in WORKLOADS:
        print(f"{name:<{width}}  {WORKLOAD_DESCRIPTIONS.get(name, '')}")


def print_profiles() -> None:
    """List every registered load profile with its description."""
    names = registered_profiles()
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {get_profile(name).description}")


def print_environments() -> None:
    """List every registered environment preset with its description."""
    names = registered_environments()
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {get_environment(name).description}")


def make_workload(name: str) -> Workload:
    """Instantiate a benchmark workload by CLI name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {', '.join(WORKLOADS)}"
        ) from None


def make_profile(name: str, duration_s: float, level: float) -> LoadProfile:
    """Instantiate a load profile by CLI name."""
    try:
        return build_registered_profile(name, duration_s, level)
    except SimulationError as exc:
        raise SystemExit(str(exc)) from None


def resolve_profile(args: argparse.Namespace) -> LoadProfile:
    """The run's load profile: ``--replay-trace`` wins over ``--profile``."""
    if getattr(args, "replay_trace", None):
        try:
            return load_replay_trace(args.replay_trace)
        except SimulationError as exc:
            raise SystemExit(str(exc)) from None
    return make_profile(args.profile, args.duration, args.level)


def make_environment_from_args(
    args: argparse.Namespace, duration_s: float
) -> Environment | None:
    """Build the run environment from the ``--environment`` /
    ``--carbon-trace`` / ``--price-trace`` / ``--pue`` knobs.

    ``None`` when no knob is given — the run stays environment-free and
    bit-identical to the historical path.  Trace/PUE overrides start
    from the named preset (or ``flat`` when only overrides are given)
    and replace the corresponding signal.
    """
    overridden = bool(
        args.carbon_trace or args.price_trace or args.pue is not None
    )
    if args.environment is None and not overridden:
        return None
    try:
        env = make_environment(args.environment or "flat", duration_s)
        if not overridden:
            return env
        carbon = (
            load_signal(args.carbon_trace, name="carbon-trace")
            if args.carbon_trace
            else env.carbon
        )
        price = (
            load_signal(args.price_trace, name="price-trace")
            if args.price_trace
            else env.price
        )
        return Environment(
            name=f"{env.name}+custom" if args.environment else "custom",
            carbon=carbon,
            price=price,
            pue=args.pue if args.pue is not None else env.pue,
            description="CLI-overridden environment",
        )
    except SimulationError as exc:
        raise SystemExit(str(exc)) from None


def make_cluster(nodes: int, preset: str | None) -> ClusterSpec | None:
    """Build the fleet description from the ``--nodes``/``--cluster-preset``
    knobs; ``None`` keeps the historical single-node machine bit-for-bit."""
    if nodes == 1 and preset is None:
        return None
    try:
        return build_cluster(preset or "haswell_ep", nodes)
    except SimulationError as exc:
        raise SystemExit(str(exc)) from None


def print_result(result: RunResult) -> None:
    """Human-readable summary of one run."""
    print(f"policy            : {result.policy}")
    print(f"workload          : {result.workload_name}")
    print(f"load profile      : {result.profile_name} ({result.duration_s:.0f} s)")
    print(f"queries           : {result.queries_completed}/{result.queries_submitted}")
    print(f"total energy      : {result.total_energy_j:.0f} J")
    print(f"average power     : {result.average_power_w():.1f} W")
    mean = result.mean_latency_s()
    if mean is not None:
        print(f"mean latency      : {1000 * mean:.1f} ms")
        print(f"p99 latency       : {1000 * result.percentile_latency_s(99):.1f} ms")
        print(f"limit violations  : {result.violation_fraction():.1%}")
    if result.environment_name is not None:
        print(f"environment       : {result.environment_name}")
        print(f"wall energy       : {result.wall_energy_j:.0f} J (PUE applied)")
        print(f"carbon            : {result.gco2_total_g:.2f} gCO2")
        print(f"cost              : ${result.cost_usd:.4f}")
        gco2_per_query = result.gco2_per_query()
        if gco2_per_query is not None:
            print(f"carbon/query      : {1000 * gco2_per_query:.4f} mgCO2")
        cost_per_query = result.cost_per_query_usd()
        if cost_per_query is not None:
            print(f"cost/query        : ${cost_per_query:.3e}")


def cmd_run(args: argparse.Namespace) -> int:
    if args.list_policies:
        print_policies()
        return 0
    if args.list_placements:
        print_placements()
        return 0
    if args.list_workloads:
        print_workloads()
        return 0
    if args.list_profiles:
        print_profiles()
        return 0
    if args.list_environments:
        print_environments()
        return 0
    workload = make_workload(args.workload)
    profile = resolve_profile(args)
    params = EclParameters(
        interval_s=args.interval,
        latency_limit_s=args.latency_limit,
        adaptation=args.adaptation,
    )
    config = RunConfiguration(
        workload=workload,
        profile=profile,
        policy=args.policy,
        placement=args.placement,
        ecl_params=params,
        seed=args.seed,
        macro_step=not args.no_macro_step,
        cluster=make_cluster(args.nodes, args.cluster_preset),
        environment=make_environment_from_args(args, profile.duration_s),
    )
    tracer = TraceRecorder() if args.trace else None
    timer = PhaseTimingObserver() if args.timings else None
    observers = [obs for obs in (tracer, timer) if obs is not None]
    if args.profile_out:
        profiler = cProfile.Profile()
        runner = SimulationRunner(config, observers=observers)
        profiler.enable()
        result = runner.run()
        profiler.disable()
        profiler.dump_stats(args.profile_out)
        print(
            f"profile           : pstats -> {args.profile_out} "
            "(inspect with python -m pstats)",
            file=sys.stderr,
        )
    elif observers:
        result = SimulationRunner(config, observers=observers).run()
    else:
        result = run_experiment(config)
    print_result(result)
    if tracer is not None:
        count = tracer.to_jsonl(args.trace)
        dropped = f" ({tracer.dropped_events} dropped)" if tracer.dropped_events else ""
        print(f"trace             : {count} events{dropped} -> {args.trace}",
              file=sys.stderr)
    if timer is not None:
        print()
        print(timer.timings.table())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    profile = resolve_profile(args)
    policies = registered_policies()
    configs = policy_grid(
        lambda: make_workload(args.workload),
        profile,
        policies=policies,
        placement=args.placement,
        seed=args.seed,
        macro_step=not args.no_macro_step,
        cluster=make_cluster(args.nodes, args.cluster_preset),
        environment=make_environment_from_args(args, profile.duration_s),
    )

    def report_progress(p):
        print(
            f"[{p.completed}/{p.total}] {p.policy} "
            f"({p.source}, {p.wall_s:.1f} s)",
            file=sys.stderr,
        )

    suite = ExperimentSuite(
        workers=args.workers,
        use_cache=not args.no_cache,
        progress=report_progress,
    )
    print(f"running {', '.join(policies)} ...", file=sys.stderr)
    results = dict(zip(policies, suite.run(configs)))
    if suite.cache_hits:
        print(
            f"({suite.cache_hits} of {len(configs)} runs served from "
            f"{suite.cache_dir}/)",
            file=sys.stderr,
        )
    if suite.pool_utilization is not None:
        print(
            f"(pool utilization {suite.pool_utilization:.0%})",
            file=sys.stderr,
        )
    print(comparison_table(results))
    reference = reference_policy()
    base = results[reference]
    for policy in policies:
        if policy == reference:
            continue
        saving = energy_saving_fraction(base, results[policy])
        print(f"{policy} saving vs {reference}: {saving:.1%}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if bool(args.trace) == bool(args.cache_dir):
        raise SystemExit("report needs exactly one of --trace or --cache-dir")
    if args.trace:
        trace_path = Path(args.trace)
        if trace_path.is_dir():
            # A directory of runs: one report per trace, each rendered
            # independently so single-node and cluster traces can mix
            # without one run's schema assumptions breaking another's.
            traces = sorted(trace_path.glob("*.jsonl"))
            if not traces:
                raise SystemExit(f"no .jsonl traces under {trace_path}")
            if args.format == "csv":
                raise SystemExit(
                    "csv format needs a single trace file, "
                    f"not the directory {trace_path}"
                )
            parts = []
            for trace in traces:
                report = render_trace_report(read_trace(trace))
                parts.append(f"# {trace.name}\n\n{report}")
            text = "\n\n---\n\n".join(parts)
        else:
            events = read_trace(trace_path)
            if args.format == "csv":
                text = trace_samples_csv(events)
            else:
                text = render_trace_report(events)
    else:
        results = cached_results(args.cache_dir)
        if not results:
            raise SystemExit(f"no cached run results under {args.cache_dir}")
        if args.format == "csv":
            text = summary_csv(results)
        else:
            text = summary_table_markdown(results)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.workload in MICRO_WORKLOADS:
        chars = MICRO_WORKLOADS[args.workload]
    else:
        chars = make_workload(args.workload).characteristics
    machine = Machine(seed=args.seed)
    profile = build_profile(machine, 0, chars)
    optimal = profile.most_efficient()
    baseline = profile.baseline_entry()
    print(f"workload               : {chars.name}")
    print(f"configurations         : {len(profile)}")
    print(f"optimal configuration  : {optimal.configuration.describe()}")
    print(
        f"optimal perf / power   : {optimal.measurement.performance_score:.3e} "
        f"instr/s @ {optimal.measurement.power_w:.1f} W"
    )
    print(f"baseline configuration : {baseline.configuration.describe()}")
    print(f"max energy saving      : {profile.max_rti_saving():.1%}")
    print("\nskyline (performance ascending):")
    for point in profile.skyline():
        print(
            f"  {point.configuration.describe():>22}  "
            f"{point.performance_score:.3e} instr/s  "
            f"{point.power_w:6.1f} W  eff {point.energy_efficiency:.3e}"
        )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    machine = Machine(seed=args.seed)
    result = MetaCalibrator(machine, 0).run()
    print(f"apply time   : {1000 * result.apply_time_s:.1f} ms")
    print(f"measure time : {1000 * result.measure_time_s:.1f} ms")
    print("\nmeasure-window deviations:")
    for window, dev in sorted(result.measure_deviation.items(), reverse=True):
        print(f"  {1000 * window:7.1f} ms : {dev:.2%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Energy-Control for In-Memory Database Systems "
        "(SIGMOD 2018) — reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="kv-non-indexed",
                       help=f"one of {', '.join(WORKLOADS)}")
        p.add_argument("--profile", default="spike",
                       help=f"one of {', '.join(registered_profiles())} "
                            "(see --list-profiles)")
        p.add_argument("--duration", type=float, default=45.0,
                       help="profile duration in seconds (paper: 180)")
        p.add_argument("--level", type=float, default=0.5,
                       help="load fraction for the constant profile")
        p.add_argument("--replay-trace", metavar="PATH",
                       help="replay a recorded arrival stream instead of "
                            "--profile: a JSONL telemetry trace (repro run "
                            "--trace) or a time_s[,count] CSV arrival curve")
        p.add_argument("--environment", default=None,
                       help=f"one of {', '.join(registered_environments())} "
                            "(see --list-environments); attaches carbon/"
                            "price/PUE accounting to the run")
        p.add_argument("--carbon-trace", metavar="PATH",
                       help="override the carbon-intensity signal with a "
                            "JSONL/CSV (time_s, gCO2-per-kWh) curve")
        p.add_argument("--price-trace", metavar="PATH",
                       help="override the electricity-price signal with a "
                            "JSONL/CSV (time_s, $-per-kWh) curve")
        p.add_argument("--pue", type=float, default=None,
                       help="override the facility PUE (cooling/"
                            "distribution overhead multiplier, >= 1.0)")
        p.add_argument("--placement", default=DEFAULT_PLACEMENT,
                       choices=registered_placements(),
                       help="initial data placement policy "
                            "(see --list-placements)")
        p.add_argument("--nodes", type=int, default=1,
                       help="cluster size in nodes; 1 without "
                            "--cluster-preset keeps the historical "
                            "single-node machine bit-for-bit")
        p.add_argument("--cluster-preset", default=None,
                       choices=sorted(CLUSTER_PRESETS),
                       help="fleet composition for --nodes > 1 "
                            "(default: homogeneous haswell_ep)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-macro-step", action="store_true",
                       help="kill switch: run every tick live instead of "
                            "leaping over steady-state spans (bit-identical "
                            "results, much slower)")

    run_p = sub.add_parser("run", help="run one experiment")
    common(run_p)
    run_p.add_argument("--policy", default=DEFAULT_POLICY,
                       choices=registered_policies())
    run_p.add_argument("--list-policies", action="store_true",
                       help="list registered control policies and exit")
    run_p.add_argument("--list-placements", action="store_true",
                       help="list registered placement policies and exit")
    run_p.add_argument("--list-workloads", action="store_true",
                       help="list benchmark workloads and exit")
    run_p.add_argument("--list-profiles", action="store_true",
                       help="list load profiles and exit")
    run_p.add_argument("--list-environments", action="store_true",
                       help="list environment presets and exit")
    run_p.add_argument("--interval", type=float, default=1.0,
                       help="socket-ECL period in seconds")
    run_p.add_argument("--latency-limit", type=float, default=0.1,
                       help="query latency limit in seconds")
    run_p.add_argument("--adaptation", default="multiplexed",
                       choices=("static", "online", "multiplexed"))
    run_p.add_argument("--trace", metavar="PATH",
                       help="record a structured event trace (arrivals, "
                            "reconfigurations, completions, samples) to "
                            "this JSONL file")
    run_p.add_argument("--timings", action="store_true",
                       help="print wall-time attribution across the five "
                            "pipeline phases")
    run_p.add_argument("--profile-out", metavar="PATH",
                       help="profile the tick loop with cProfile and write "
                            "the pstats dump to PATH")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="run all policies and compare")
    common(cmp_p)
    cmp_p.add_argument("--workers", type=int, default=None,
                       help="parallel run processes (default: "
                            "REPRO_SUITE_WORKERS or 1)")
    cmp_p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    cmp_p.set_defaults(func=cmd_compare)

    rep_p = sub.add_parser(
        "report",
        help="render a recorded trace or a cached suite into a report",
    )
    rep_p.add_argument("--trace", metavar="PATH",
                       help="JSONL trace written by `repro run --trace`, or "
                            "a directory of such traces (one report each)")
    rep_p.add_argument("--cache-dir", metavar="DIR",
                       help="experiment-suite result cache to summarize")
    rep_p.add_argument("--format", choices=("markdown", "csv"),
                       default="markdown",
                       help="markdown report/table (default) or CSV "
                            "(sample series for --trace, summary rows "
                            "for --cache-dir)")
    rep_p.add_argument("--out", metavar="PATH",
                       help="write to a file instead of stdout")
    rep_p.set_defaults(func=cmd_report)

    prof_p = sub.add_parser("profile", help="print a workload's energy profile")
    prof_p.add_argument("--workload", default="memory-bound",
                        help=f"micro workload ({', '.join(MICRO_WORKLOADS)}) "
                             f"or benchmark ({', '.join(WORKLOADS)})")
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.set_defaults(func=cmd_profile)

    cal_p = sub.add_parser("calibrate", help="run the meta calibration")
    cal_p.add_argument("--seed", type=int, default=0)
    cal_p.set_defaults(func=cmd_calibrate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Reports get piped through `head` and friends; a closed pipe is
        # not an error.  Point stdout at devnull so the interpreter's
        # exit-time flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
