"""Parallel experiment suite with an on-disk result cache.

The paper's evaluation (§6) is a grid of independent (workload, load
profile, policy) runs.  :class:`ExperimentSuite` executes such a batch:

* runs fan out across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (each simulation is CPU-bound single-thread Python, so processes are
  the only way to use more than one core);
* every run is keyed by a content hash over its full
  :class:`~repro.sim.runner.RunConfiguration` (plus duration), and the
  resulting :class:`~repro.sim.metrics.RunResult` is pickled into a cache
  directory — re-running an experiment script recomputes only what
  changed.

Determinism is unaffected: a configuration fully determines its run (the
simulation is seeded), so executing in a pool, inline, or from the cache
yields the same result object.

Environment knobs:

* ``REPRO_SUITE_WORKERS`` — default pool size (default 1: inline, no
  subprocesses).
* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache/`` under
  the current working directory).
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.environment import Environment
from repro.errors import SimulationError
from repro.loadprofiles.base import LoadProfile
from repro.sim.metrics import RunResult
from repro.sim.policy import registered_policies, validate_policy_name
from repro.sim.runner import RunConfiguration, run_experiment
from repro.workloads.base import Workload

#: Bump to invalidate every cached result (e.g. after changing the
#: simulation model in a way that alters run outcomes).  v2: run results
#: record the realized (tick-grid) duration plus ``requested_duration_s``.
#: v3: configurations gained ``placement`` and ``engine_config`` (default
#: runs are unchanged, but the signature schema is new).
#: v4: the load generator pre-draws arrival blocks on a vectorized grid,
#: which changes every arrival stream (and configurations gained
#: ``macro_step``).
#: v5: configurations gained ``cluster`` (default runs are unchanged, but
#: the signature schema is new).
#: v6: configurations gained ``environment`` and results carry
#: carbon/cost accounting fields (default runs are unchanged, but the
#: signature and result schemas are new).
CACHE_VERSION = 6

DEFAULT_CACHE_DIR = ".repro_cache"


def suite_worker_count(default: int = 1) -> int:
    """Worker-process count from ``REPRO_SUITE_WORKERS`` (min 1)."""
    raw = os.environ.get("REPRO_SUITE_WORKERS", "")
    if not raw:
        return max(1, default)
    try:
        return max(1, int(raw))
    except ValueError:
        raise SimulationError(
            f"REPRO_SUITE_WORKERS must be an integer, got {raw!r}"
        ) from None


def default_cache_dir() -> Path:
    """Cache directory from ``REPRO_CACHE_DIR`` (default .repro_cache/)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, well-mixed per-run seed for building config batches."""
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def policy_grid(
    workload_factory: Callable[[], Workload],
    profile: LoadProfile,
    policies: Sequence[str] | None = None,
    **config_kwargs: Any,
) -> list[RunConfiguration]:
    """One :class:`RunConfiguration` per policy — the §6 comparison axis.

    The registry is the source of truth: with ``policies=None`` every
    registered policy (including out-of-tree registrations) gets a
    configuration, in registration order.  ``workload_factory`` is called
    once per configuration so runs never share workload instances, and
    ``config_kwargs`` forwards to every :class:`RunConfiguration`.
    """
    names = registered_policies() if policies is None else tuple(policies)
    return [
        RunConfiguration(
            workload=workload_factory(),
            profile=profile,
            policy=validate_policy_name(name),
            **config_kwargs,
        )
        for name in names
    ]


def scenario_grid(
    workload_factory: Callable[[], Workload],
    profile: LoadProfile,
    environments: "Sequence[Environment | None]",
    policies: Sequence[str] | None = None,
    **config_kwargs: Any,
) -> list[RunConfiguration]:
    """The scenario × policy grid: every environment crossed with every
    policy (environment-major order, matching nested loops).

    ``None`` entries in ``environments`` are legal and mean "no
    environment attached" — the natural control column of a carbon/price
    ablation.  Everything else behaves like :func:`policy_grid`.
    """
    return [
        config
        for environment in environments
        for config in policy_grid(
            workload_factory,
            profile,
            policies=policies,
            environment=environment,
            **config_kwargs,
        )
    ]


@dataclass(frozen=True)
class RunProgress:
    """One progress notification from :meth:`ExperimentSuite.run`.

    Emitted once per run as it finishes (cache replays included), in
    completion order.  ``completed``/``total`` drive progress displays;
    ``wall_s`` is the run's own wall time (the cache load time for
    hits), and ``source`` says where the result came from.

    Attributes:
        index: position of the run in the submitted batch.
        total: batch size.
        policy / workload / profile: run identity.
        source: ``"cache"``, ``"inline"``, or ``"pool"``.
        wall_s: wall seconds this run took.
        completed: runs finished so far, including this one.
    """

    index: int
    total: int
    policy: str
    workload: str
    profile: str
    source: str
    wall_s: float
    completed: int


def _timed_run(
    config: RunConfiguration, duration_s: float | None
) -> tuple[RunResult, float]:
    """Pool worker: run one experiment and report its own wall time."""
    start = time.perf_counter()
    result = run_experiment(config, duration_s)
    return result, time.perf_counter() - start


def _canonical(obj: Any) -> Any:
    """Reduce an object to a deterministic, repr-stable structure.

    Covers everything a :class:`RunConfiguration` transitively contains:
    dataclasses (by field), enums (by name), numpy arrays (by bytes),
    floats (by ``repr``, so -0.0 and precision survive), callables (by
    qualified name), and plain objects (by sorted ``__dict__``).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return ("float", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__qualname__, obj.name)
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape, obj.tobytes())
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in fields(obj)
            ),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (repr(_canonical(k)), _canonical(v))
                    for k, v in obj.items()
                )
            ),
        )
    if callable(obj):
        return (
            "callable",
            getattr(obj, "__module__", ""),
            getattr(obj, "__qualname__", repr(obj)),
        )
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return (
            type(obj).__qualname__,
            tuple(
                sorted((k, repr(_canonical(v))) for k, v in state.items())
            ),
        )
    return ("repr", repr(obj))


def config_signature(
    config: RunConfiguration, duration_s: float | None = None
) -> str:
    """Content hash identifying one experiment run."""
    payload = repr(
        (CACHE_VERSION, _canonical(config), _canonical(duration_s))
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ExperimentSuite:
    """Executes a batch of experiment configurations.

    Args:
        workers: process-pool size; ``None`` reads ``REPRO_SUITE_WORKERS``
            (default 1 = run inline in this process).
        cache_dir: result cache directory; ``None`` reads
            ``REPRO_CACHE_DIR`` (default ``.repro_cache/``).
        use_cache: disable to always recompute (results are still not
            written).
        progress: optional callback receiving one :class:`RunProgress`
            per finished run (cache replays included), in completion
            order.

    After :meth:`run`, :attr:`run_stats` holds the same
    :class:`RunProgress` records, and :attr:`pool_utilization` the
    fraction of pool capacity that was busy (``None`` for inline runs).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        progress: Callable[[RunProgress], None] | None = None,
    ):
        self.workers = suite_worker_count() if workers is None else max(1, workers)
        self.cache_dir = (
            default_cache_dir() if cache_dir is None else Path(cache_dir)
        )
        self.use_cache = use_cache
        self.progress = progress
        self.cache_hits = 0
        self.cache_misses = 0
        self.run_stats: list[RunProgress] = []
        self.pool_utilization: float | None = None

    # -- cache -----------------------------------------------------------

    def _cache_path(self, signature: str) -> Path:
        return self.cache_dir / f"{signature}.pkl"

    def _load(self, signature: str) -> RunResult | None:
        path = self._cache_path(signature)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # Missing, corrupt, or version-incompatible entries are misses.
            return None
        return result if isinstance(result, RunResult) else None

    def _store(self, signature: str, result: RunResult) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(signature)
        # Atomic publish: concurrent suites may race on the same key.
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution --------------------------------------------------------

    def run(
        self,
        configs: Sequence[RunConfiguration],
        durations: Sequence[float | None] | None = None,
    ) -> list[RunResult]:
        """Run every configuration, returning results in input order.

        ``durations`` optionally overrides each run's duration (same
        meaning as the second argument of
        :func:`~repro.sim.runner.run_experiment`).
        """
        configs = list(configs)
        if durations is None:
            durations = [None] * len(configs)
        else:
            durations = list(durations)
            if len(durations) != len(configs):
                raise SimulationError(
                    f"{len(durations)} durations for {len(configs)} configs"
                )

        results: list[RunResult | None] = [None] * len(configs)
        signatures: list[str | None] = [None] * len(configs)
        pending: list[int] = []
        for index, (config, duration) in enumerate(zip(configs, durations)):
            if self.use_cache:
                start = time.perf_counter()
                signature = config_signature(config, duration)
                signatures[index] = signature
                cached = self._load(signature)
                if cached is not None:
                    self.cache_hits += 1
                    results[index] = cached
                    self._note(
                        index, len(configs), config,
                        "cache", time.perf_counter() - start,
                    )
                    continue
                self.cache_misses += 1
            pending.append(index)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                self._run_inline(configs, durations, signatures, results, pending)
            else:
                self._run_pooled(configs, durations, signatures, results, pending)

        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise SimulationError(
                f"suite finished without a result for run(s) {missing}"
            )
        return results  # type: ignore[return-value]

    def _run_inline(
        self,
        configs: list[RunConfiguration],
        durations: list[float | None],
        signatures: list[str | None],
        results: list[RunResult | None],
        pending: list[int],
    ) -> None:
        for index in pending:
            try:
                result, wall_s = _timed_run(configs[index], durations[index])
            except Exception as exc:
                raise self._wrap_failure(index, configs, signatures, exc) from exc
            results[index] = result
            self._publish(signatures[index], result)
            self._note(index, len(configs), configs[index], "inline", wall_s)

    def _run_pooled(
        self,
        configs: list[RunConfiguration],
        durations: list[float | None],
        signatures: list[str | None],
        results: list[RunResult | None],
        pending: list[int],
    ) -> None:
        """Fan pending runs across a process pool.

        A worker failure does not strand the batch: every completed
        result (including runs that finish after the failure) is still
        published to the cache, the remaining futures are cancelled, and
        the error re-raises wrapped with the failing configuration's
        identity.
        """
        pool_size = min(self.workers, len(pending))
        busy_s = 0.0
        failure: tuple[int, BaseException] | None = None
        pool_start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(_timed_run, configs[index], durations[index]): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                if failure is None:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                else:
                    # Drain after cancellation: publish whatever the
                    # already-running workers still deliver.
                    done, _ = wait(outstanding)
                    outstanding = set()
                for future in done:
                    index = futures[future]
                    if future.cancelled():
                        continue
                    try:
                        result, wall_s = future.result()
                    except Exception as exc:
                        if failure is None:
                            failure = (index, exc)
                        continue
                    busy_s += wall_s
                    results[index] = result
                    self._publish(signatures[index], result)
                    self._note(
                        index, len(configs), configs[index], "pool", wall_s
                    )
                if failure is not None:
                    for future in outstanding:
                        future.cancel()
        elapsed = time.perf_counter() - pool_start
        if elapsed > 0:
            self.pool_utilization = busy_s / (elapsed * pool_size)
        if failure is not None:
            index, exc = failure
            raise self._wrap_failure(index, configs, signatures, exc) from exc

    def _wrap_failure(
        self,
        index: int,
        configs: list[RunConfiguration],
        signatures: list[str | None],
        exc: BaseException,
    ) -> SimulationError:
        """A worker error, annotated with the failing run's identity."""
        config = configs[index]
        signature = signatures[index] or config_signature(config)
        return SimulationError(
            f"experiment {index} failed "
            f"(policy={config.policy!r}, "
            f"workload={config.workload.full_name!r}, "
            f"profile={config.profile.name!r}, "
            f"signature={signature[:12]}): "
            f"{type(exc).__name__}: {exc}"
        )

    def _note(
        self,
        index: int,
        total: int,
        config: RunConfiguration,
        source: str,
        wall_s: float,
    ) -> None:
        record = RunProgress(
            index=index,
            total=total,
            policy=config.policy,
            workload=config.workload.full_name,
            profile=config.profile.name,
            source=source,
            wall_s=wall_s,
            completed=len(self.run_stats) + 1,
        )
        self.run_stats.append(record)
        if self.progress is not None:
            self.progress(record)

    def _publish(self, signature: str | None, result: RunResult) -> None:
        if self.use_cache and signature is not None:
            self._store(signature, result)
