"""Workload abstraction shared by all benchmarks.

A :class:`Workload` couples three things:

1. **hardware characteristics** — what the performance model needs to
   translate instruction demand into throughput (and hence what shapes
   the workload's energy profile);
2. **a modeled query generator** — cheap
   :class:`~repro.dbms.queries.Query` objects whose messages carry
   pre-computed costs, used by the end-to-end load-profile simulations
   where millions of operations per simulated second are in flight;
3. **a real-execution mode** — data loading plus operator messages that
   actually read and write partition data, used by tests and examples.

``nominal_peak_qps`` anchors the load-profile fraction scale: a load
profile value of 1.0 maps to this query rate (chosen per workload so that
1.0 saturates the machine under the baseline configuration, matching the
paper's "100 % load" notion).
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import WorkloadError
from repro.dbms.queries import Query
from repro.hardware.perfmodel import WorkloadCharacteristics
from repro.storage.partition import PartitionMap


class WorkloadVariant(enum.Enum):
    """Index availability variant (paper Table 1 splits on this)."""

    INDEXED = "indexed"
    NON_INDEXED = "non-indexed"


class Workload(abc.ABC):
    """One benchmark workload in one variant."""

    def __init__(self, variant: WorkloadVariant):
        self.variant = variant

    # -- identity -----------------------------------------------------------

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short benchmark name (e.g. ``"kv"``, ``"tatp"``, ``"ssb"``)."""

    @property
    def full_name(self) -> str:
        """Name including the variant, e.g. ``"kv (non-indexed)"``."""
        return f"{self.name} ({self.variant.value})"

    @property
    def is_indexed(self) -> bool:
        """Whether this is the indexed variant."""
        return self.variant is WorkloadVariant.INDEXED

    # -- hardware view ----------------------------------------------------------

    @property
    @abc.abstractmethod
    def characteristics(self) -> WorkloadCharacteristics:
        """Execution characteristics for the performance model."""

    @property
    @abc.abstractmethod
    def nominal_peak_qps(self) -> float:
        """Query rate corresponding to 100 % load."""

    def queries_per_second(self, load_fraction: float) -> float:
        """Translate a load-profile fraction into a query rate.

        Raises:
            WorkloadError: for negative fractions.
        """
        if load_fraction < 0:
            raise WorkloadError(f"negative load fraction {load_fraction}")
        return load_fraction * self.nominal_peak_qps

    def queries_per_second_array(self, load_fractions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`queries_per_second` (load-generator hot path).

        Subclasses that override :meth:`queries_per_second` with a
        non-linear mapping must override this method to match.

        Raises:
            WorkloadError: for negative fractions.
        """
        load_fractions = np.asarray(load_fractions, dtype=np.float64)
        if np.any(load_fractions < 0):
            worst = float(load_fractions.min())
            raise WorkloadError(f"negative load fraction {worst}")
        return load_fractions * self.nominal_peak_qps

    # -- modeled mode ---------------------------------------------------------------

    @abc.abstractmethod
    def make_modeled_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """Build one query whose messages carry pre-computed costs."""

    def make_modeled_batch(
        self,
        rng: np.random.Generator,
        arrival_times_s: list[float],
        partitions: PartitionMap,
    ) -> list[Query]:
        """Build one modeled query per arrival time, in arrival order.

        Overrides may hoist per-query invariants (cost models, fan-out,
        shared cost objects) out of the loop, but must draw from ``rng``
        in exactly the same order as repeated :meth:`make_modeled_query`
        calls so the arrival stream stays reproducible.
        """
        return [
            self.make_modeled_query(rng, arrival_s, partitions)
            for arrival_s in arrival_times_s
        ]

    def make_modeled_bank(
        self,
        rng: np.random.Generator,
        arrival_times_s: list[float],
        partitions: PartitionMap,
    ):
        """Build the arrivals as a columnar :class:`QueryBank`, or ``None``.

        The vectorized load path calls this first and falls back to
        :meth:`make_modeled_batch` on ``None``.  An override must be an
        exact columnar transcription of the batch path: same query ids
        (reserve them via :func:`repro.dbms.queries.take_query_ids`),
        same ``rng`` draw order *per query*, same per-message costs and
        targets.  Only workloads whose modeled queries are single-stage
        and untagged can be represented; anything else returns ``None``.
        """
        return None

    # -- real mode ---------------------------------------------------------------

    @abc.abstractmethod
    def setup_real(
        self, partitions: PartitionMap, scale: int, rng: np.random.Generator
    ) -> None:
        """Create tables/indexes and load ``scale`` rows of data."""

    @abc.abstractmethod
    def make_real_query(
        self, rng: np.random.Generator, arrival_s: float, partitions: PartitionMap
    ) -> Query:
        """Build one query whose messages execute real operations."""


def pick_partitions(
    rng: np.random.Generator, partitions: PartitionMap, count: int
) -> list[int]:
    """Choose ``count`` distinct partition ids uniformly at random."""
    total = len(partitions)
    if count > total:
        raise WorkloadError(
            f"cannot pick {count} distinct partitions out of {total}"
        )
    if count == total:
        return list(range(total))
    return [int(p) for p in rng.choice(total, size=count, replace=False)]
