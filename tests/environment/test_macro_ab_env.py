"""Macro A/B bit-identity with an environment attached.

The environment layer makes two promises:

* attaching an environment never changes the simulation itself — the
  core result surface (energy, queries, latencies, samples) is
  bit-identical to a run without one; only the accounting fields appear;
* the carbon/cost accounting is itself bit-identical between macro
  stepping and per-tick execution, even though spans get cut at every
  exogenous signal change.
"""

import pytest

from repro.environment import make_environment
from repro.hardware.cluster import homogeneous_cluster
from repro.loadprofiles import spike_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.workloads import KeyValueWorkload, WorkloadVariant

DURATION_S = 3.0


def _run(policy, *, macro, environment="diurnal-carbon", nodes=1, poisson=False):
    profile = spike_profile(duration_s=DURATION_S)
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=profile,
        policy=policy,
        seed=5,
        macro_step=macro,
        poisson_arrivals=poisson,
        cluster=homogeneous_cluster(nodes) if nodes > 1 else None,
        environment=(
            make_environment(environment, profile.duration_s)
            if environment is not None
            else None
        ),
    )
    runner = SimulationRunner(config)
    return runner.run(), runner


def _assert_identical(on, off):
    """Full-surface bitwise comparison, accounting fields included."""
    assert on.total_energy_j == off.total_energy_j
    assert on.queries_submitted == off.queries_submitted
    assert on.queries_completed == off.queries_completed
    assert on.latencies_s == off.latencies_s
    assert on.duration_s == off.duration_s
    assert len(on.samples) == len(off.samples)
    for a, b in zip(on.samples, off.samples):
        assert a == b
    assert on.environment_name == off.environment_name
    assert on.wall_energy_j == off.wall_energy_j
    assert on.gco2_total_g == off.gco2_total_g
    assert on.cost_usd == off.cost_usd


class TestMacroIdentityWithEnvironment:
    @pytest.mark.parametrize("policy", ["baseline", "ecl", "ondemand"])
    @pytest.mark.parametrize("poisson", [False, True])
    def test_accounting_is_stepping_invariant(self, policy, poisson):
        on, runner_on = _run(policy, macro=True, poisson=poisson)
        off, runner_off = _run(policy, macro=False, poisson=poisson)
        _assert_identical(on, off)
        assert runner_off.macro_ticks_skipped == 0
        assert on.gco2_total_g > 0
        assert on.cost_usd > 0

    def test_carbon_policy_on_a_fleet(self):
        on, runner_on = _run("ecl-carbon", macro=True, nodes=2)
        off, _ = _run("ecl-carbon", macro=False, nodes=2)
        _assert_identical(on, off)
        assert runner_on.macro_ticks_skipped > 0

    def test_spans_are_cut_at_signal_changes(self):
        """The diurnal preset changes 23 times over the run; at least
        some span attempts must be bounded by the environment (the
        change tick has to run live)."""
        _, runner = _run("baseline", macro=True)
        assert runner.macro_ticks_skipped > 0
        cuts = runner.span_cut_stats()["cut_by"]
        assert cuts.get("environment", 0) > 0

    def test_flat_environment_adds_no_span_cuts(self):
        """Constant signals never change, so a flat environment caps
        nothing: span attribution shows no environment cuts at all."""
        _, runner = _run("baseline", macro=True, environment="flat")
        assert "environment" not in runner.span_cut_stats()["cut_by"]


class TestEnvironmentIsPureObservation:
    @pytest.mark.parametrize("macro", [False, True])
    def test_core_results_unchanged_by_attachment(self, macro):
        with_env, _ = _run("ecl", macro=macro)
        without, _ = _run("ecl", macro=macro, environment=None)
        assert with_env.total_energy_j == without.total_energy_j
        assert with_env.queries_submitted == without.queries_submitted
        assert with_env.queries_completed == without.queries_completed
        assert with_env.latencies_s == without.latencies_s
        for a, b in zip(with_env.samples, without.samples):
            assert a == b

    def test_no_environment_means_no_accounting(self):
        result, runner = _run("baseline", macro=True, environment=None)
        assert result.environment_name is None
        assert result.wall_energy_j is None
        assert result.gco2_total_g is None
        assert result.cost_usd is None
        assert result.gco2_per_query() is None
        assert result.cost_per_query_usd() is None
        assert runner.environment_accounting is None

    def test_accounting_fields_and_derivatives(self):
        result, _ = _run("baseline", macro=True)
        assert result.environment_name == "diurnal-carbon"
        # Wall energy covers PSU conversion overhead and PUE on top of
        # the RAPL-visible package+DRAM energy.
        assert result.wall_energy_j > result.total_energy_j
        assert result.gco2_per_query() == pytest.approx(
            result.gco2_total_g / result.queries_completed
        )
        assert result.cost_per_query_usd() == pytest.approx(
            result.cost_usd / result.queries_completed
        )
        as_dict = result.to_dict()
        assert as_dict["environment"] == "diurnal-carbon"
        assert as_dict["gco2_total_g"] == result.gco2_total_g
        assert as_dict["gco2_per_query_g"] == result.gco2_per_query()
