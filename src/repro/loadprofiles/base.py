"""Load-profile abstraction.

A load profile is a function ``fraction(t) -> load ∈ [0, ...]`` over a
finite duration.  1.0 means 100 % of the workload's nominal peak rate;
values above 1.0 model deliberate overload (more queries arrive than the
system can process, Fig. 13's 80–100 s phase).
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


class LoadProfile(abc.ABC):
    """A queries-per-second curve, normalized to the workload peak."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Profile name as used in reports ("spike", "twitter", ...)."""

    @property
    @abc.abstractmethod
    def duration_s(self) -> float:
        """Length of the profile."""

    @abc.abstractmethod
    def fraction(self, t_s: float) -> float:
        """Load fraction at time ``t_s`` (0.0 outside the duration)."""

    def fraction_array(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fraction` over an array of times.

        The default evaluates the scalar method point by point; profiles
        with a cheap closed form (see :class:`SegmentProfile`) override it.
        The load generator's block pre-draw is the only caller on the hot
        path, so overrides only need to agree with :meth:`fraction` up to
        float rounding — both simulation modes share the same pre-drawn
        arrival stream either way.
        """
        return np.array([self.fraction(float(t)) for t in times_s], dtype=np.float64)

    def average_fraction(self, resolution_s: float = 0.5) -> float:
        """Time-average of the profile (for report normalization)."""
        if resolution_s <= 0:
            raise SimulationError(f"resolution must be > 0, got {resolution_s}")
        steps = max(1, int(self.duration_s / resolution_s))
        total = sum(
            self.fraction((i + 0.5) * self.duration_s / steps) for i in range(steps)
        )
        return total / steps

    def peak_fraction(self, resolution_s: float = 0.1) -> float:
        """Maximum of the profile (sampled)."""
        steps = max(1, int(self.duration_s / resolution_s))
        return max(
            self.fraction((i + 0.5) * self.duration_s / steps) for i in range(steps)
        )


@dataclass(frozen=True)
class _Point:
    t_s: float
    fraction: float


class SegmentProfile(LoadProfile):
    """Piecewise-linear profile through (time, fraction) control points."""

    def __init__(self, name: str, points: list[tuple[float, float]]):
        if len(points) < 2:
            raise SimulationError("segment profile needs >= 2 control points")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise SimulationError("control points must be time-ordered")
        if any(f < 0 for _, f in points):
            raise SimulationError("load fractions must be >= 0")
        self._name = name
        self._points = [_Point(t, f) for t, f in points]
        self._times = times

    @property
    def name(self) -> str:
        return self._name

    @property
    def duration_s(self) -> float:
        return self._points[-1].t_s

    def fraction(self, t_s: float) -> float:
        if t_s < self._points[0].t_s or t_s > self._points[-1].t_s:
            return 0.0
        i = bisect.bisect_right(self._times, t_s)
        if i >= len(self._points):
            return self._points[-1].fraction
        if i == 0:
            return self._points[0].fraction
        before, after = self._points[i - 1], self._points[i]
        span = after.t_s - before.t_s
        if span <= 0:
            return after.fraction
        w = (t_s - before.t_s) / span
        return before.fraction * (1.0 - w) + after.fraction * w

    def fraction_array(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=np.float64)
        xs = np.array(self._times, dtype=np.float64)
        fs = np.array([p.fraction for p in self._points], dtype=np.float64)
        return np.interp(times_s, xs, fs, left=0.0, right=0.0)
