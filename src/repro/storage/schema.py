"""Schemas: typed column definitions for tables.

Kept deliberately small — the benchmarks (TATP, SSB, key-value) only need
fixed-width integers/floats and strings — but validation is strict so
schema bugs surface at insert time, not as corrupt columns later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Column data types supported by the storage layer."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic aggregation."""
        return self is not DataType.STRING

    @property
    def width_bytes(self) -> int:
        """Storage width per value (strings are estimated at 16 bytes)."""
        if self is DataType.INT32:
            return 4
        if self in (DataType.INT64, DataType.FLOAT64):
            return 8
        return 16

    def validate(self, value: Any) -> Any:
        """Coerce and validate one value for this type.

        Raises:
            SchemaError: on type mismatch or out-of-range integers.
        """
        if self is DataType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {type(value).__name__}")
            return value
        if self is DataType.FLOAT64:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected number, got {type(value).__name__}")
            return float(value)
        # integer types
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"expected int, got {type(value).__name__}")
        if self is DataType.INT32 and not -(2**31) <= value < 2**31:
            raise SchemaError(f"value {value} out of int32 range")
        if self is DataType.INT64 and not -(2**63) <= value < 2**63:
            raise SchemaError(f"value {value} out of int64 range")
        return value


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of one column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


class Schema:
    """An ordered, named collection of column specs."""

    def __init__(self, columns: Sequence[ColumnSpec]):
        if not columns:
            raise SchemaError("schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self._columns)}

    @property
    def columns(self) -> tuple[ColumnSpec, ...]:
        """All column specs in declaration order."""
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        """Index of a column by name.

        Raises:
            SchemaError: for unknown columns.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names}"
            ) from None

    def column(self, name: str) -> ColumnSpec:
        """Spec of a column by name."""
        return self._columns[self.position(name)]

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Validate and coerce a full row.

        Raises:
            SchemaError: on arity or type mismatch.
        """
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self._columns)} columns"
            )
        out = []
        for spec, value in zip(self._columns, row):
            try:
                out.append(spec.dtype.validate(value))
            except SchemaError as exc:
                raise SchemaError(f"column {spec.name!r}: {exc}") from None
        return tuple(out)

    def row_width_bytes(self) -> int:
        """Estimated storage bytes per row."""
        return sum(c.dtype.width_bytes for c in self._columns)

    @staticmethod
    def of(**specs: DataType) -> "Schema":
        """Convenience constructor: ``Schema.of(id=DataType.INT64, ...)``."""
        return Schema([ColumnSpec(name, dtype) for name, dtype in specs.items()])

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only the given columns, in given order."""
        return Schema([self.column(n) for n in names])
