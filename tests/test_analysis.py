"""Tests for the analysis helpers (savings, proportionality, reports)."""

import pytest

from repro.analysis import (
    comparison_table,
    power_load_curve,
    proportionality_index,
    run_summary,
    summarize_savings,
)
from repro.errors import SimulationError
from repro.sim.metrics import RunResult, SamplePoint


def make_result(samples, latencies=(0.01,), energy=100.0, workload="kv",
                profile="test"):
    result = RunResult(
        policy="ecl",
        workload_name=workload,
        profile_name=profile,
        duration_s=10.0,
        latency_limit_s=0.1,
    )
    result.samples = samples
    result.latencies_s = list(latencies)
    result.total_energy_j = energy
    return result


def sample(load, power, t=0.0):
    return SamplePoint(
        time_s=t,
        load_qps=load,
        rapl_power_w=power,
        psu_power_w=power * 1.2,
        avg_latency_s=0.01,
        pending_messages=0,
        in_flight_queries=0,
    )


def linear_samples(idle=50.0, peak=250.0, n=100):
    return [
        sample(load=i / (n - 1) * 1000, power=idle + i / (n - 1) * (peak - idle))
        for i in range(n)
    ]


class TestProportionality:
    def test_proportional_through_origin_scores_one(self):
        result = make_result(linear_samples(idle=0.0, peak=250.0))
        assert proportionality_index(result) == pytest.approx(1.0, abs=0.02)

    def test_static_floor_lowers_the_score(self):
        floored = proportionality_index(
            make_result(linear_samples(idle=100.0, peak=250.0))
        )
        clean = proportionality_index(
            make_result(linear_samples(idle=0.0, peak=250.0))
        )
        assert floored < clean - 0.1

    def test_flat_power_scores_low(self):
        # Idle draws 60 W but any load at all jumps straight to 240 W —
        # the classic non-proportional server shape.
        flat = [sample(load=0.0, power=60.0) for _ in range(10)]
        flat += [sample(load=100.0 + i * 9.0, power=240.0) for i in range(100)]
        result = make_result(flat)
        assert proportionality_index(result) < 0.8

    def test_curve_buckets(self):
        curve = power_load_curve(make_result(linear_samples()), buckets=5)
        assert len(curve) == 5
        loads = [l for l, _ in curve]
        assert loads == sorted(loads)
        powers = [p for _, p in curve]
        assert powers == sorted(powers)

    def test_requires_samples(self):
        with pytest.raises(SimulationError):
            power_load_curve(make_result([]))

    def test_requires_load(self):
        with pytest.raises(SimulationError):
            power_load_curve(make_result([sample(0.0, 100.0)]))

    def test_bucket_validation(self):
        with pytest.raises(SimulationError):
            power_load_curve(make_result(linear_samples()), buckets=0)


class TestSavingsSummary:
    def test_summary_fields(self):
        base = make_result(linear_samples(), latencies=[0.01], energy=200.0)
        base.policy = "baseline"
        ecl = make_result(linear_samples(), latencies=[0.02], energy=150.0)
        summary = summarize_savings(base, ecl)
        assert summary.saving_fraction == pytest.approx(0.25)
        assert summary.latency_penalty_s == pytest.approx(0.01)
        assert summary.baseline_energy_j == 200.0

    def test_mismatched_workloads_rejected(self):
        base = make_result(linear_samples(), workload="kv")
        other = make_result(linear_samples(), workload="tatp")
        with pytest.raises(SimulationError):
            summarize_savings(base, other)

    def test_mismatched_profiles_rejected(self):
        base = make_result(linear_samples(), profile="spike")
        other = make_result(linear_samples(), profile="twitter")
        with pytest.raises(SimulationError):
            summarize_savings(base, other)


class TestReports:
    def test_run_summary_contains_key_figures(self):
        text = run_summary(make_result(linear_samples(), energy=123.0))
        assert "123 J" in text
        assert "mean latency" in text

    def test_comparison_table_aligned(self):
        runs = {
            "baseline": make_result(linear_samples(), energy=200.0),
            "ecl": make_result(linear_samples(), energy=120.0),
        }
        table = comparison_table(runs)
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_empty_comparison_rejected(self):
        with pytest.raises(SimulationError):
            comparison_table({})
