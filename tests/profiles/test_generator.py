"""Tests for the configuration generator (paper §4.2)."""

import pytest

from repro.errors import ProfileError
from repro.profiles.generator import ConfigurationGenerator, GeneratorParameters


@pytest.fixture
def generator(machine):
    return ConfigurationGenerator(machine.topology, machine.params, 0)


class TestParameters:
    def test_defaults(self):
        p = GeneratorParameters()
        assert (p.f_core, p.f_uncore, p.f_core_mixed, p.c_max) == (4, 3, False, 256)

    def test_validation(self):
        with pytest.raises(ProfileError):
            GeneratorParameters(f_core=0)
        with pytest.raises(ProfileError):
            GeneratorParameters(c_max=0)


class TestFrequencySubsets:
    def test_core_subset_has_anchors(self, generator):
        subset = generator.core_frequency_subset()
        assert 1.2 in subset  # lowest
        assert 2.6 in subset  # highest sustained
        assert 3.1 in subset  # turbo
        assert len(subset) == 4

    def test_uncore_subset_endpoints(self, generator):
        subset = generator.uncore_frequency_subset()
        assert subset[0] == 1.2 and subset[-1] == 3.0
        assert len(subset) == 3

    def test_wide_core_subset(self, machine):
        g = ConfigurationGenerator(
            machine.topology, machine.params, 0, GeneratorParameters(f_core=7)
        )
        subset = g.core_frequency_subset()
        assert len(subset) == 7
        assert subset[-1] == 3.1


class TestPaperCounts:
    """The paper's §4.2 worked example must reproduce exactly."""

    def test_ungrouped_count_is_288(self, generator):
        assert generator.count_for_group(1) == 288

    def test_sibling_grouping_gives_144(self, generator):
        assert generator.count_for_group(2) == 144

    def test_c_max_forces_sibling_grouping(self, generator):
        assert generator.selected_group_size() == 2
        configs = generator.generate()
        assert len(configs) == 145  # 144 + idle

    def test_large_c_max_keeps_full_granularity(self, machine):
        g = ConfigurationGenerator(
            machine.topology, machine.params, 0, GeneratorParameters(c_max=512)
        )
        assert g.selected_group_size() == 1
        assert len(g.generate()) == 289

    def test_mixed_adds_configurations(self, machine):
        base = ConfigurationGenerator(
            machine.topology, machine.params, 0, GeneratorParameters(c_max=10_000)
        )
        mixed = ConfigurationGenerator(
            machine.topology,
            machine.params,
            0,
            GeneratorParameters(f_core_mixed=True, c_max=10_000),
        )
        assert len(mixed.generate()) > len(base.generate())


class TestGeneratedSet:
    def test_idle_first(self, generator):
        configs = generator.generate()
        assert configs[0].is_idle

    def test_all_unique(self, generator):
        configs = generator.generate()
        assert len(set(configs)) == len(configs)

    def test_all_on_requested_socket(self, machine):
        g = ConfigurationGenerator(machine.topology, machine.params, 1)
        for config in g.generate():
            assert config.socket_id == 1

    def test_all_valid_for_machine(self, machine, generator):
        for config in generator.generate():
            config.validate_against(machine)

    def test_activation_prefixes_are_nested(self, generator):
        """Thread sets form a chain: each larger set contains the smaller."""
        configs = [c for c in generator.generate() if not c.is_idle]
        by_count: dict[int, frozenset] = {}
        for config in configs:
            by_count.setdefault(config.thread_count, config.active_threads)
        counts = sorted(by_count)
        for small, large in zip(counts, counts[1:]):
            assert by_count[small] < by_count[large]

    def test_grouped_activation_units_whole_cores(self, generator):
        """With sibling grouping, both HT siblings activate together."""
        configs = [c for c in generator.generate() if not c.is_idle]
        topo_threads = 2  # siblings per core
        for config in configs:
            assert config.thread_count % topo_threads == 0

    def test_ungrouped_activation_order(self, machine):
        g = ConfigurationGenerator(
            machine.topology, machine.params, 0, GeneratorParameters(c_max=10_000)
        )
        units = g.activation_units(1)
        # First 12 units are first siblings (ids 0..11), then HT (24..35).
        assert [u[0] for u in units[:12]] == list(range(12))
        assert [u[0] for u in units[12:]] == list(range(24, 36))

    def test_invalid_group_size(self, generator):
        with pytest.raises(ProfileError):
            generator.activation_units(3)
