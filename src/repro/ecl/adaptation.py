"""Energy-profile maintenance: online and multiplexed adaptation (§5.1).

The profile is only useful while it reflects the *current* workload, so
the socket-level ECL maintains it continuously:

* **online adaptation** — zero overhead: every interval, the counters
  measured for the configuration that was applied anyway are folded into
  the profile (EWMA).  Its blind spot: only configurations the profile
  already recommends get refreshed.
* **multiplexed adaptation** — triggered when the online measurements
  drift too far from the stored values (a workload change): every entry
  is marked stale and re-evaluated by time-multiplexing short
  apply+measure slots into the ECL's normal operation, piggybacking on
  the RTI controller's switching.

This module keeps the bookkeeping (drift detection, the stale queue,
measurement validation); the slot scheduling lives in
:class:`repro.ecl.socket_ecl.SocketEcl`.
"""

from __future__ import annotations

from repro.errors import ControlError
from repro.profiles.configuration import Configuration, ConfigurationMeasurement
from repro.profiles.profile import EnergyProfile


class ProfileMaintainer:
    """Drift detection and stale-entry management for one profile."""

    def __init__(
        self,
        profile: EnergyProfile,
        ewma_weight: float = 0.5,
        drift_threshold: float = 0.15,
        mark_stale_on_drift: bool = True,
    ):
        if not 0.0 < ewma_weight <= 1.0:
            raise ControlError(f"ewma_weight must be in (0, 1], got {ewma_weight}")
        if drift_threshold <= 0:
            raise ControlError(
                f"drift_threshold must be > 0, got {drift_threshold}"
            )
        self.profile = profile
        self.ewma_weight = ewma_weight
        self.drift_threshold = drift_threshold
        self.mark_stale_on_drift = mark_stale_on_drift
        self.online_updates = 0
        self.multiplexed_updates = 0
        self.drift_events = 0

    # -- online path -----------------------------------------------------------

    def record_online(
        self, configuration: Configuration, measurement: ConfigurationMeasurement
    ) -> bool:
        """Fold an in-situ measurement into the profile.

        Returns True when the measurement drifted beyond the threshold
        from the stored value, in which case every *other* entry is marked
        stale (the freshly measured one is trusted) and multiplexed
        re-evaluation should begin.
        """
        entry = self.profile.entry(configuration)
        drifted = False
        if entry.measurement is not None:
            stored = entry.measurement
            perf_drift = _relative_delta(
                stored.performance_score, measurement.performance_score
            )
            power_drift = _relative_delta(stored.power_w, measurement.power_w)
            drifted = max(perf_drift, power_drift) > self.drift_threshold
        self.profile.record(
            configuration, measurement, blend_weight=self.ewma_weight
        )
        self.online_updates += 1
        if drifted:
            self.drift_events += 1
            if self.mark_stale_on_drift:
                self.profile.mark_all_stale()
                self.profile.entry(configuration).stale = False
        return drifted

    # -- multiplexed path ----------------------------------------------------------

    @property
    def multiplexing_needed(self) -> bool:
        """Whether stale entries are waiting for re-evaluation.

        The idle configuration is excluded: it cannot be measured while
        queries are in flight (and its power is machine-global anyway).
        """
        return any(
            not e.configuration.is_idle for e in self.profile.stale_entries()
        )

    def next_stale_configuration(
        self, relevance_level: float | None = None
    ) -> Configuration | None:
        """Pick the next stale configuration to re-evaluate.

        With ``relevance_level`` given, stale entries whose (possibly
        outdated) measurement claims to satisfy the level are preferred,
        best claimed efficiency first — these are exactly the entries the
        control decision would pick, so correcting them first un-poisons
        the decision fastest.  Remaining entries follow smallest-first
        (fewer threads saturate at lower backlog, so they are measurable
        even under light load).
        """
        stale = [
            e for e in self.profile.stale_entries()
            if not e.configuration.is_idle
        ]
        if not stale:
            return None
        if relevance_level is not None and relevance_level > 0:
            relevant = [
                e
                for e in stale
                if e.measurement is not None
                and e.measurement.performance_score >= relevance_level
            ]
            if relevant:
                relevant.sort(
                    key=lambda e: -e.measurement.energy_efficiency
                )
                return relevant[0].configuration
        stale.sort(
            key=lambda e: (
                e.configuration.thread_count,
                e.configuration.average_core_ghz,
                e.configuration.uncore_ghz,
            )
        )
        return stale[0].configuration

    def record_multiplexed(
        self, configuration: Configuration, measurement: ConfigurationMeasurement
    ) -> None:
        """Store a dedicated re-evaluation measurement (replaces outright)."""
        self.profile.record(configuration, measurement, blend_weight=None)
        self.multiplexed_updates += 1


def _relative_delta(stored: float, measured: float) -> float:
    """Relative difference, safe around zero."""
    denom = max(abs(stored), 1e-12)
    return abs(measured - stored) / denom
