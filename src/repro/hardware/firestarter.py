"""FIRESTARTER analog: a synthetic maximum-load workload.

The paper uses the FIRESTARTER tool [6] — an "optimal balance of compute
instructions, AVX instructions, and memory controller requests" — to put
the system under full load for the static/dynamic power breakdown of
Fig. 3.  This module provides the equivalent workload characteristics and
a helper that drives a :class:`~repro.hardware.machine.Machine` into the
same state.
"""

from __future__ import annotations

from repro.hardware.frequency import EnergyPerformanceBias
from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad, WorkloadCharacteristics

#: Compute-saturating mix that also keeps the memory controllers busy.
FIRESTARTER_CHARACTERISTICS = WorkloadCharacteristics(
    name="firestarter",
    base_cpi=0.4,
    ht_speedup=1.25,
    bytes_per_instr=0.45,
    miss_rate=0.0,
)


def apply_full_load(machine: Machine, turbo: bool = False) -> None:
    """Configure ``machine`` like FIRESTARTER would: everything on, flat out.

    Activates every hardware thread, pins all core clocks to the maximum
    sustained (or turbo) frequency and every uncore clock to its maximum,
    sets the performance EPB so turbo engages immediately, and declares
    unbounded full-load demand on every socket.
    """
    all_threads = {t.global_id for t in machine.topology.iter_threads()}
    machine.cstates.set_active_threads(all_threads)
    machine.set_epb_all(EnergyPerformanceBias.PERFORMANCE)
    for sock in machine.topology.sockets:
        params = machine.params_for(sock.socket_id)
        freq = params.core_turbo_ghz if turbo else params.core_nominal_ghz
        machine.frequency.set_socket_core_frequencies(
            sock.socket_id,
            {core.core_id: freq for core in sock.cores},
            machine.time_s,
        )
        machine.frequency.set_uncore_frequency(
            sock.socket_id, params.uncore_max_ghz
        )
        machine.set_socket_load(
            sock.socket_id,
            SocketLoad(
                characteristics=FIRESTARTER_CHARACTERISTICS,
                demand_instructions_per_s=None,
            ),
        )
        machine.note_configuration_switch(sock.socket_id)


def apply_idle(machine: Machine) -> None:
    """Park every thread and clear demand (static power measurement)."""
    machine.cstates.set_active_threads(set())
    for sock in machine.topology.sockets:
        machine.frequency.set_uncore_auto(sock.socket_id)
        machine.set_idle(sock.socket_id)
        machine.note_configuration_switch(sock.socket_id)
