#!/usr/bin/env python3
"""Explore energy profiles: how workload shape picks the right hardware.

Reproduces the §4 analysis interactively: generates the configuration
set for one socket, evaluates it under several workloads, and prints an
ASCII rendition of the Fig. 9/10 charts — performance level (x) versus
energy efficiency (y), with the skyline, the most energy-efficient
configuration, and the ruling zones.

Run:  python examples/energy_profile_explorer.py [workload]
      workload ∈ compute-bound | memory-bound | atomic-contention |
                 hashtable-insert  (default: all)
"""

import sys

from repro.hardware.machine import Machine
from repro.profiles.evaluate import build_profile
from repro.profiles.zones import RulingZone, classify_zones
from repro.workloads.micro import MICRO_WORKLOADS


def render_profile(machine: Machine, name: str) -> None:
    chars = MICRO_WORKLOADS[name]
    profile = build_profile(machine, 0, chars)
    peak_perf = profile.peak_performance()
    peak_eff = max(
        e.measurement.energy_efficiency for e in profile.evaluated_entries()
        if not e.configuration.is_idle
    )
    zones = classify_zones(profile)

    print()
    print(f"=== {name} ===")
    width, height = 64, 16
    grid = [[" "] * width for _ in range(height)]
    for entry in profile.evaluated_entries():
        if entry.configuration.is_idle:
            continue
        m = entry.measurement
        x = min(width - 1, int(m.performance_score / peak_perf * (width - 1)))
        y = min(height - 1, int(m.energy_efficiency / peak_eff * (height - 1)))
        zone = zones[entry.configuration]
        mark = {
            RulingZone.UNDER_UTILIZATION: ".",
            RulingZone.OPTIMAL: "O",
            RulingZone.OVER_UTILIZATION: "+",
        }[zone]
        grid[height - 1 - y][x] = mark
    for skyline_point in profile.skyline():
        x = min(
            width - 1,
            int(skyline_point.performance_score / peak_perf * (width - 1)),
        )
        y = min(
            height - 1,
            int(skyline_point.energy_efficiency / peak_eff * (height - 1)),
        )
        if grid[height - 1 - y][x] != "O":
            grid[height - 1 - y][x] = "*"

    print("efficiency ↑   (. under-utilized  O optimal  + over-utilized  * skyline)")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width + "→ performance level")

    optimal = profile.most_efficient()
    baseline = profile.baseline_entry()
    print(f"  optimal configuration : {optimal.configuration.describe()}")
    print(
        f"  optimal perf/power    : {optimal.measurement.performance_score:.2e} "
        f"instr/s @ {optimal.measurement.power_w:.1f} W"
    )
    print(f"  race-to-idle baseline : {baseline.configuration.describe()}")
    print(
        f"  response advantage    : "
        f"{optimal.measurement.performance_score / baseline.measurement.performance_score:.2f}×"
    )
    print(f"  max energy saving     : {profile.max_rti_saving():.1%}")


def main() -> None:
    machine = Machine(seed=0)
    names = sys.argv[1:] or list(MICRO_WORKLOADS)
    for name in names:
        if name not in MICRO_WORKLOADS:
            raise SystemExit(
                f"unknown workload {name!r}; choose from {sorted(MICRO_WORKLOADS)}"
            )
        render_profile(machine, name)


if __name__ == "__main__":
    main()
