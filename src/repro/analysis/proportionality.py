"""Energy proportionality of a measured run (§6.1, Fig. 13(a)).

The paper observes that the ECL makes the system's power draw nearly
proportional to its load above ~50 %, with the static power floor
dominating below.  These helpers condense a run's samples into the
power-versus-load curve and a single *proportionality index*:

``EP = 1 − mean(|P(L) − L · P_peak|) / P_peak``

where ``L · P_peak`` is the perfectly proportional line *through the
origin*: a truly proportional system draws no power without load.  EP = 1
means perfect proportionality; a high static floor or a bulging curve
lowers the score.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.metrics import RunResult


def power_load_curve(
    result: RunResult, buckets: int = 10
) -> list[tuple[float, float]]:
    """Average power per load bucket: ``[(load_fraction, power_w), ...]``.

    Loads are normalized to the run's maximum sampled rate; buckets
    without samples are omitted.

    Raises:
        SimulationError: without samples or with a non-positive bucket
            count.
    """
    if buckets < 1:
        raise SimulationError(f"buckets must be >= 1, got {buckets}")
    if not result.samples:
        raise SimulationError("run has no samples")
    peak_load = max(s.load_qps for s in result.samples)
    if peak_load <= 0:
        raise SimulationError("run never saw load")
    sums = [0.0] * buckets
    counts = [0] * buckets
    for sample in result.samples:
        fraction = sample.load_qps / peak_load
        index = min(buckets - 1, int(fraction * buckets))
        sums[index] += sample.rapl_power_w
        counts[index] += 1
    curve = []
    for index in range(buckets):
        if counts[index]:
            midpoint = (index + 0.5) / buckets
            curve.append((midpoint, sums[index] / counts[index]))
    return curve


def proportionality_index(result: RunResult, buckets: int = 10) -> float:
    """Energy-proportionality index in [0, 1] (1 = perfectly linear).

    Raises:
        SimulationError: if the curve cannot be built or is degenerate.
    """
    curve = power_load_curve(result, buckets)
    if len(curve) < 2:
        raise SimulationError("need samples across at least two load buckets")
    peak_load, peak_power = curve[-1]
    if peak_power <= 0 or peak_load <= 0:
        raise SimulationError("degenerate power curve")
    slope = peak_power / peak_load  # the through-origin proportional line
    deviation = 0.0
    for load, power in curve:
        deviation += abs(power - load * slope)
    deviation /= len(curve)
    return max(0.0, 1.0 - deviation / peak_power)
