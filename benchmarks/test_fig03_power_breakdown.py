"""Fig. 3 — static/dynamic power breakdown (RAPL vs PSU).

Paper: idle (static) power is ~18 % of peak, CPU + DRAM dominate the
dynamic power, and ~15 % of the load power (PSU losses, fans, board) is
invisible to RAPL.  The turbo transient peaks near 500 W at the PSU.
"""

from repro.hardware.machine import Machine
from repro.hardware.firestarter import apply_full_load, apply_idle

from _shared import heading


def measure_breakdown():
    machine = Machine(seed=1)
    apply_idle(machine)
    idle = machine.step(1.0)
    apply_full_load(machine)
    machine.step(1.0)  # settle
    full = machine.step(1.0)
    # The turbo transient must be measured fresh: the ~1 s thermal budget
    # is the reason the paper's 500 W peak "can only endure for about 1 s".
    hot = Machine(seed=1)
    apply_full_load(hot, turbo=True)
    turbo = hot.step(0.9)
    hot.step(0.5)  # budget exhausted, throttled
    throttled = hot.step(1.0)
    return idle, full, turbo, throttled


def test_fig03_power_breakdown(run_once):
    idle, full, turbo, throttled = run_once(measure_breakdown)

    heading("Fig. 3 — Haswell-EP power breakdown (static vs dynamic), Watts")
    rows = [
        ("state", "pkg S0", "pkg S1", "dram S0", "dram S1", "RAPL", "PSU"),
    ]
    for name, step in (
        ("idle", idle),
        ("full load", full),
        ("turbo burst", turbo),
        ("turbo throttled", throttled),
    ):
        rows.append(
            (
                name,
                f"{step.sockets[0].power.package_w:6.1f}",
                f"{step.sockets[1].power.package_w:6.1f}",
                f"{step.sockets[0].power.dram_w:6.1f}",
                f"{step.sockets[1].power.dram_w:6.1f}",
                f"{step.rapl_power_w:6.1f}",
                f"{step.psu_power_w:6.1f}",
            )
        )
    for row in rows:
        print("  ".join(f"{c:>10}" for c in row))

    static_ratio = idle.psu_power_w / full.psu_power_w
    overhead = (full.psu_power_w - full.rapl_power_w) / full.rapl_power_w
    print(f"\nstatic/peak ratio: {static_ratio:.1%}   (paper: ~18 %)")
    print(f"RAPL-invisible overhead at load: {overhead:.1%} (paper: ~15 % + fixed)")
    print(
        f"turbo PSU peak: {turbo.psu_power_w:.0f} W for ~1 s, then "
        f"{throttled.psu_power_w:.0f} W throttled (paper: ~500 W, ~1 s)"
    )

    # Shape assertions.
    assert 0.12 < static_ratio < 0.24
    assert overhead > 0.15
    assert 440 < turbo.psu_power_w < 580
    # The thermal budget ends the transient near the sustained level.
    assert throttled.psu_power_w < turbo.psu_power_w - 50.0
    # CPU+DRAM dominate dynamic power.
    dynamic_rapl = full.rapl_power_w - idle.rapl_power_w
    dynamic_psu = full.psu_power_w - idle.psu_power_w
    assert dynamic_rapl / dynamic_psu > 0.8
