"""The end-to-end simulation runner (paper §6 experiment harness).

One :class:`SimulationRunner` executes a (workload, load profile,
policy) triple on a fresh machine + engine and returns a
:class:`~repro.sim.metrics.RunResult`.  Each tick advances through an
explicit phased pipeline mirroring the real system::

    arrivals -> control -> engine step -> completions -> sampling

The control policy is resolved by name through the registry in
:mod:`repro.sim.policy`; instrumentation and scripted events (the
periodic sampler, the §6.3 workload switch, user-supplied tracing)
attach to the pipeline as :mod:`~repro.sim.observers` rather than
special cases inside the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.dbms.config import EngineConfig
from repro.dbms.engine import DatabaseEngine, EngineTickResult
from repro.dbms.querybank import QueryBank
from repro.ecl.socket_ecl import EclParameters
from repro.environment import Environment, EnvironmentAccounting
from repro.placement import DEFAULT_PLACEMENT, validate_placement_name
from repro.hardware.cluster import ClusterSpec
from repro.hardware.machine import Machine
from repro.hardware.presets import HaswellEPParameters
from repro.loadprofiles.base import LoadProfile
from repro.profiles.generator import GeneratorParameters
from repro.sim.clock import TickClock, span_ticks_until
from repro.sim.loadgen import LoadGenerator
from repro.sim.macro import SpanCutStats
from repro.sim.metrics import RunResult
from repro.sim.observers import (
    ObserverList,
    RunObserver,
    SamplingObserver,
    WorkloadSwitchObserver,
)
from repro.sim.policy import DEFAULT_POLICY, ControlPolicy, build_policy, validate_policy_name
from repro.workloads.base import Workload


@dataclass
class RunConfiguration:
    """Everything needed to run one experiment."""

    workload: Workload
    profile: LoadProfile
    #: Registered policy name (see ``repro.sim.policy.registered_policies``).
    policy: str = DEFAULT_POLICY
    #: Registered placement name (see
    #: ``repro.placement.registered_placements``).  The default,
    #: ``static``, reproduces the historical round-robin bit-for-bit.
    placement: str = DEFAULT_PLACEMENT
    #: Runtime cost-model knobs; defaults match the historical constants.
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    tick_s: float = 0.002
    sample_every_s: float = 0.25
    seed: int = 0
    ecl_params: EclParameters = field(default_factory=EclParameters)
    generator_params: GeneratorParameters = field(
        default_factory=GeneratorParameters
    )
    machine_params: HaswellEPParameters | None = None
    #: Multi-node fleet description; ``None`` (the default) builds the
    #: historical single-node machine bit-for-bit.  Mutually exclusive
    #: with ``machine_params`` (the cluster's node specs carry their own
    #: hardware parameters).
    cluster: ClusterSpec | None = None
    #: Exogenous run conditions (grid carbon intensity, electricity
    #: price, facility PUE).  ``None`` (the default) disables all
    #: environment accounting and span capping — results are
    #: bit-identical to a build without the environment layer.
    environment: Environment | None = None
    #: Fill the ECL's profiles from the analytical model at t=0 instead of
    #: simulating the initial multiplexed sweep.
    warm_start: bool = True
    poisson_arrivals: bool = False
    #: Optional workload switch: at ``switch_at_s`` the load generator and
    #: the engine's declared characteristics flip to ``switch_workload``
    #: (the section 6.3 profile-adaptation experiment).
    switch_at_s: float | None = None
    switch_workload: Workload | None = None
    #: LRU size of the machine's step-resolution cache; ``0`` disables
    #: memoization (the exact uncached path, for A/B validation).
    step_cache_size: int = 1024
    #: Macro-stepping: when the next event horizon (arrival, control or
    #: sampling deadline, EET dwell expiry, migration) is more than one
    #: tick away and the system is in steady state, the runner advances
    #: machine, counters, and engine clocks over the whole span in one
    #: call — bit-identical to ticking through it (the ``--no-macro-step``
    #: CLI flag and this field are the kill switch).
    macro_step: bool = True

    def __post_init__(self) -> None:
        validate_policy_name(self.policy)
        validate_placement_name(self.placement)
        if self.tick_s <= 0 or self.sample_every_s <= 0:
            raise SimulationError("tick and sample periods must be > 0")
        if (self.switch_at_s is None) != (self.switch_workload is None):
            raise SimulationError(
                "switch_at_s and switch_workload must be given together"
            )
        if self.cluster is not None and self.machine_params is not None:
            raise SimulationError(
                "machine_params and cluster are mutually exclusive: the "
                "cluster's node specs carry their own hardware parameters"
            )


class SimulationRunner:
    """Runs one experiment configuration.

    Args:
        config: the experiment to execute.
        observers: extra :class:`~repro.sim.observers.RunObserver`
            instances hooked into the tick pipeline, after the built-in
            sampling / workload-switch observers.
    """

    def __init__(
        self,
        config: RunConfiguration,
        observers: list[RunObserver] | None = None,
    ):
        self.config = config
        self.machine = Machine(
            params=config.machine_params,
            seed=config.seed,
            step_cache_size=config.step_cache_size,
            cluster=config.cluster,
        )
        self.engine = DatabaseEngine(
            self.machine,
            utilization_window_s=config.ecl_params.interval_s,
            placement=config.placement,
            engine_config=config.engine_config,
        )
        self.engine.set_workload_characteristics(
            config.workload.characteristics
        )
        self.loadgen = LoadGenerator(
            config.workload,
            config.profile,
            self.engine.partitions,
            seed=config.seed + 1,
            poisson=config.poisson_arrivals,
            use_banks=config.engine_config.vector_messages,
        )
        self.policy: ControlPolicy = build_policy(
            config.policy, self.engine, config
        )
        self.extra_observers: list[RunObserver] = list(observers or [])
        #: Macro-step telemetry of the most recent :meth:`run` (committed
        #: spans and the ticks they covered; diagnostic only — never part
        #: of the :class:`RunResult`).
        self.macro_spans = 0
        self.macro_ticks_skipped = 0
        #: Span-cut attribution of the most recent :meth:`run`: which
        #: component bounded each span attempt, and how long the
        #: committed spans were (see :mod:`repro.sim.macro`).
        self.span_cuts = SpanCutStats()
        #: Carbon/cost accumulator of the run in flight; ``None`` when no
        #: environment is attached (set up by :meth:`run`).
        self.environment_accounting: EnvironmentAccounting | None = None

    def add_observer(self, observer: RunObserver) -> None:
        """Attach one more observer before :meth:`run` is called."""
        self.extra_observers.append(observer)

    def _built_in_observers(self) -> list[RunObserver]:
        config = self.config
        built_in: list[RunObserver] = []
        if config.switch_at_s is not None:
            assert config.switch_workload is not None
            built_in.append(
                WorkloadSwitchObserver(
                    config.switch_at_s, config.switch_workload
                )
            )
        built_in.append(SamplingObserver(config.sample_every_s))
        return built_in

    def run(self, duration_s: float | None = None) -> RunResult:
        """Execute the experiment and collect metrics."""
        config = self.config
        if duration_s is None:
            duration_s = config.profile.duration_s
        clock = TickClock(tick_s=config.tick_s, duration_s=duration_s)
        result = RunResult(
            policy=config.policy,
            workload_name=config.workload.full_name,
            profile_name=config.profile.name,
            # Energy accrues over the realized tick grid, so all time
            # averages must divide by it — not by the requested length,
            # which a non-divisible duration/tick ratio never reaches.
            duration_s=clock.realized_duration_s,
            requested_duration_s=duration_s,
            latency_limit_s=config.ecl_params.latency_limit_s,
        )
        observers = ObserverList(
            self._built_in_observers() + self.extra_observers
        )
        observers.on_run_start(self, result)

        tick = config.tick_s
        energy_before = self.machine.true_total_energy_j()
        environment = config.environment
        accounting = (
            EnvironmentAccounting(environment)
            if environment is not None
            else None
        )
        self.environment_accounting = accounting
        macro_view = (
            getattr(self.policy, "macro_view", None)
            if config.macro_step
            else None
        )
        self.macro_spans = 0
        self.macro_ticks_skipped = 0
        self.span_cuts = SpanCutStats()
        total_ticks = clock.tick_count
        ticks_done = 0
        while ticks_done < total_ticks:
            now = self.machine.time_s
            self._phase_arrivals(now, tick, result, observers)
            self._phase_control(now, tick, observers)
            tick_result = self._phase_engine_step(now, tick, observers)
            self._phase_completions(now, tick_result, result, observers)
            self._phase_sampling(now, tick_result, observers)
            if accounting is not None:
                accounting.account_tick(
                    now, tick, tick_result.step.psu_power_w
                )
            ticks_done += 1
            if macro_view is None:
                continue
            ticks_done += self._try_macro_span(
                tick, total_ticks - ticks_done, macro_view, observers
            )

        result.total_energy_j = (
            self.machine.true_total_energy_j() - energy_before
        )
        if accounting is not None:
            result.environment_name = environment.name
            result.wall_energy_j = accounting.wall_energy_j
            result.gco2_total_g = accounting.gco2_total_g
            result.cost_usd = accounting.cost_usd
        observers.on_run_end(result)
        return result

    def _try_macro_span(
        self,
        tick_s: float,
        ticks_remaining: int,
        macro_view,
        observers: ObserverList,
    ) -> int:
        """Attempt one composite steady-state span after a live tick.

        A composite span is a sequence of *segments* separated by
        replayed control ticks.  Each iteration computes the event
        horizon — the policy's own view (which also yields the per-tick
        overhead charges it would have applied), the observers'
        deadlines, and the machine's next internal event — sized down to
        one tick short of the earliest of them, clamps the segment to
        the pre-drawn zero-arrival run, and hands it to the engine,
        whose validity fold shrinks or rejects it if any socket is not
        in steady state.  When the policy instead declares the very next
        tick busy, the executor asks it to *replay* that control tick in
        place (``macro_step_tick``): hardware-inert actions — deadline
        re-checks, counter-window opens — run at the exact tick time
        with the exact RNG draw order, and the span continues across
        them instead of dropping to per-tick mode.  Only ticks that
        mutate hardware state (reconfigurations, RTI flips, interval
        decisions) still run live.

        A segment may also commit a single *straggler* tick right before
        a deadline when every component's own epsilon predicate shows it
        inert (``now + 1e-12 < horizon``), so only the acting tick runs
        live, not its inert predecessor.

        Returns the total ticks skipped; the whole composite counts as
        one span, attributed to the component that finally cut it in
        :attr:`span_cuts` (see :mod:`repro.sim.macro`).
        """
        cuts = self.span_cuts
        machine = self.machine
        policy = self.policy
        environment = self.config.environment
        accounting = self.environment_accounting
        macro_replay = getattr(policy, "macro_replay", None)
        macro_step_tick = getattr(policy, "macro_step_tick", None)
        inf = float("inf")
        total = 0
        replays = 0
        binding = "run-end"
        reason = ""
        replayed_at_s = None
        while ticks_remaining - total >= 1:
            remaining = ticks_remaining - total
            now = machine.time_s
            # Exogenous-signal changes cap spans like boot deadlines do:
            # accounting folds exactly either way (signals are evaluated
            # on the span's full tick grid), but the change itself must
            # land on a live tick so policy scalar reads and trace
            # events see it at its exact time.
            env_horizon_s = (
                environment.next_change_s(now)
                if environment is not None
                else inf
            )
            view = macro_view(now, tick_s)
            if view is None:
                binding = "policy"
                reason = getattr(policy, "macro_cut", "")
                # The next tick acts — but if the action is hardware-
                # inert it can replay here, at its exact time, provided
                # nothing else touches that tick first: no arrivals and
                # no observer due at ``now`` (observers may mutate state
                # *before* the control phase).  The same-time guard
                # breaks a pathological replay that fails to clear the
                # policy's own busy condition.
                if (
                    macro_step_tick is not None
                    and now != replayed_at_s
                    and self.loadgen.zero_arrival_run(now, tick_s, 1) >= 1
                ):
                    obs_h, _ = observers.attributed_macro_horizon_s(now)
                    if (
                        obs_h is not None
                        and now + 1e-12 < obs_h
                        and now + 1e-12 < env_horizon_s
                        and macro_step_tick(now, tick_s)
                    ):
                        replayed_at_s = now
                        replays += 1
                        cuts.record_replay(reason)
                        continue
                break
            reason = ""
            policy_horizon_s, tick_charges = view
            observer_horizon_s, observer_label = (
                observers.attributed_macro_horizon_s(now)
            )
            if observer_horizon_s is None:
                binding = observer_label
                break
            machine_horizon_s = machine.next_internal_event_s()
            horizon_s = min(
                policy_horizon_s,
                observer_horizon_s,
                machine_horizon_s,
                env_horizon_s,
            )
            if horizon_s == policy_horizon_s:
                binding = "policy"
            elif horizon_s == observer_horizon_s:
                binding = observer_label
            elif horizon_s == machine_horizon_s:
                binding = "machine"
            else:
                binding = "environment"
            # Interior segments commit even a single tick — it extends an
            # ongoing composite and replaces a live tick with one folded
            # engine call.  The same goes for fresh attempts of replay-
            # capable policies, whose composites usually continue through
            # the acting tick.  A plain policy's fresh attempt keeps the
            # 2-tick floor: nothing continues after the deadline, and a
            # lone 1-tick span costs about as much machinery as the live
            # tick it would replace.
            min_ticks = (
                1 if (total or replays or macro_step_tick is not None) else 2
            )
            if horizon_s == inf:
                n = remaining
                binding = "run-end"
            else:
                n = span_ticks_until(now, horizon_s, tick_s)
                if n >= remaining:
                    n = remaining
                    binding = "run-end"
                elif n < 1:
                    # Straggler tick right before a deadline: commit it
                    # alone if nothing fires *at* ``now`` by each
                    # component's own predicate.  The machine horizon
                    # (turbo dwell) has no epsilon predicate of its own,
                    # so stay a conservative full tick short of it.
                    if not (
                        now + 1e-12 < policy_horizon_s
                        and now + 1e-12 < observer_horizon_s
                        and now + 1e-12 < env_horizon_s
                        and (
                            machine_horizon_s == inf
                            or span_ticks_until(
                                now, machine_horizon_s, tick_s
                            )
                            >= 1
                        )
                    ):
                        break
                    n = 1
                if n < min_ticks:
                    break
            arrivals_clear = self.loadgen.zero_arrival_run(now, tick_s, n)
            if arrivals_clear < n:
                n = arrivals_clear
                binding = "loadgen"
                if n < min_ticks:
                    break
            advanced = self.engine.span_tick(
                tick_s, n, tick_charges, min_ticks=min_ticks
            )
            if advanced:
                # Fold the policy's own periodic activity (the system-
                # level latency check) over the exact tick times just
                # skipped.
                if macro_replay is not None:
                    macro_replay(now, tick_s, advanced)
                if accounting is not None:
                    # PSU power is constant across a committed span (the
                    # engine's steady-state validity fold), so the span
                    # charge folds the same per-tick increments the live
                    # loop would have.
                    accounting.account_span(
                        now, tick_s, advanced, machine.last_step.psu_power_w
                    )
                total += advanced
            if advanced < n:
                binding = "engine"
                break
        if total:
            self.macro_spans += 1
            self.macro_ticks_skipped += total
            cuts.record_span(total, binding)
        else:
            cuts.record_refusal(binding, reason)
        return total

    def span_cut_stats(self) -> dict:
        """JSON-ready span-cut attribution of the most recent run."""
        return self.span_cuts.as_dict(
            self.macro_spans, self.macro_ticks_skipped
        )

    # -- pipeline phases ------------------------------------------------------

    def _phase_arrivals(
        self,
        now_s: float,
        dt_s: float,
        result: RunResult,
        observers: ObserverList,
    ) -> None:
        """Phase 1: scripted events, then enqueue this tick's arrivals."""
        observers.before_arrivals(now_s, dt_s)
        batch = self.loadgen.arrivals(now_s, dt_s)
        if isinstance(batch, QueryBank):
            self.engine.submit_bank(batch)
            result.queries_submitted += batch.count
            if observers.wants_arrivals:
                for view in batch.query_views():
                    observers.on_arrival(now_s, view)
        else:
            for query in batch:
                self.engine.submit(query)
                result.queries_submitted += 1
                observers.on_arrival(now_s, query)
        observers.after_arrivals(now_s, dt_s)

    def _phase_control(
        self, now_s: float, dt_s: float, observers: ObserverList
    ) -> None:
        """Phase 2: the policy reconfigures hardware for the tick."""
        self.policy.on_tick(now_s, dt_s)
        observers.after_control(now_s, dt_s)

    def _phase_engine_step(
        self, now_s: float, dt_s: float, observers: ObserverList
    ) -> EngineTickResult:
        """Phase 3: runtime and hardware advance together."""
        tick_result = self.engine.tick(dt_s)
        observers.after_step(now_s, tick_result)
        return tick_result

    def _phase_completions(
        self,
        now_s: float,
        tick_result: EngineTickResult,
        result: RunResult,
        observers: ObserverList,
    ) -> None:
        """Phase 4: account for every query that finished this tick."""
        for completion in tick_result.completions:
            result.queries_completed += 1
            result.latencies_s.append(completion.latency_s)
            observers.on_completion(now_s, completion)
        observers.after_completions(now_s)

    def _phase_sampling(
        self,
        now_s: float,
        tick_result: EngineTickResult,
        observers: ObserverList,
    ) -> None:
        """Phase 5: periodic sampling and end-of-tick instrumentation."""
        observers.end_tick(now_s, tick_result)


def run_experiment(config: RunConfiguration, duration_s: float | None = None) -> RunResult:
    """Convenience wrapper: build a runner and run it."""
    return SimulationRunner(config).run(duration_s)
