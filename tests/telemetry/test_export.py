"""Tests for metrics export: summary tables, cache loading, trace reports."""

import csv
import io

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile
from repro.sim import ExperimentSuite, RunConfiguration
from repro.sim.metrics import RunResult, SamplePoint
from repro.telemetry import (
    cached_results,
    render_trace_report,
    summary_csv,
    summary_table_markdown,
    trace_samples_csv,
    write_summary_csv,
)
from repro.telemetry.export import SUMMARY_COLUMNS
from repro.workloads import KeyValueWorkload, WorkloadVariant


def fake_result(policy="ecl", energy=100.0):
    result = RunResult(
        policy=policy,
        workload_name="kv (non-indexed)",
        profile_name="test",
        duration_s=10.0,
        requested_duration_s=10.0,
        latency_limit_s=0.1,
    )
    result.total_energy_j = energy
    result.latencies_s = [0.01, 0.02, 0.03]
    result.queries_submitted = result.queries_completed = 3
    result.samples = [
        SamplePoint(
            time_s=0.0,
            load_qps=10.0,
            rapl_power_w=100.0,
            psu_power_w=120.0,
            avg_latency_s=None,
            pending_messages=0,
            in_flight_queries=0,
        )
    ]
    return result


class TestSummaryTables:
    def test_csv_has_one_row_per_run(self):
        text = summary_csv([fake_result("ecl"), fake_result("baseline", 200.0)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert list(rows[0]) == list(SUMMARY_COLUMNS)
        assert rows[0]["policy"] == "ecl"
        assert float(rows[1]["total_energy_j"]) == 200.0

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            summary_csv([])
        with pytest.raises(SimulationError):
            summary_table_markdown([])

    def test_markdown_table_shape(self):
        text = summary_table_markdown([fake_result(), fake_result("baseline")])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("| policy |")
        assert "| ecl |" in lines[2]

    def test_write_summary_csv(self, tmp_path):
        target = write_summary_csv([fake_result()], tmp_path / "summary.csv")
        assert target.exists()
        assert target.read_text(encoding="utf-8").startswith("policy,")


class TestCachedResults:
    def test_loads_suite_cache(self, tmp_path):
        config = RunConfiguration(
            workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
            profile=constant_profile(0.3, duration_s=1.0),
            policy="baseline",
        )
        ExperimentSuite(workers=1, cache_dir=tmp_path).run([config])
        (tmp_path / "garbage.pkl").write_bytes(b"not a pickle")
        results = cached_results(tmp_path)
        assert len(results) == 1
        assert results[0].policy == "baseline"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SimulationError):
            cached_results(tmp_path / "absent")


def synthetic_trace():
    return [
        {
            "event": "run_start",
            "policy": "ecl",
            "workload": "kv",
            "profile": "spike",
            "tick_s": 0.002,
            "duration_s": 4.0,
            "requested_duration_s": 4.0,
        },
        {"event": "arrival", "t": 0.1, "query_id": 1},
        {
            "event": "reconfig",
            "t": 0.5,
            "before": {"active_threads": 4},
            "after": {"active_threads": 2},
        },
        {"event": "completion", "t": 0.2, "query_id": 1, "latency_s": 0.1},
        {
            "event": "sample",
            "time_s": 0.25,
            "load_qps": 12.0,
            "rapl_power_w": 90.0,
            "psu_power_w": 110.0,
            "avg_latency_s": None,
            "pending_messages": 0,
            "in_flight_queries": 1,
        },
        {
            "event": "run_end",
            "queries_submitted": 1,
            "queries_completed": 1,
            "total_energy_j": 42.0,
            "total_events": 6,
            "dropped_events": 0,
        },
    ]


class TestTraceReport:
    def test_report_covers_every_section(self):
        report = render_trace_report(synthetic_trace())
        assert "# Run trace report" in report
        assert "`ecl`" in report
        assert "| reconfig | 1 |" in report
        assert "1 hardware reconfigurations" in report
        assert "p99 latency" in report
        assert "PSU power" in report
        assert "42 J" in report

    def test_empty_trace_raises(self):
        with pytest.raises(SimulationError):
            render_trace_report([])

    def test_single_node_trace_has_no_node_power_section(self):
        assert "## Node power" not in render_trace_report(synthetic_trace())

    def test_quiet_cluster_reports_zero_transitions(self):
        # A cluster run whose fleet never transitioned still gets the
        # section (so tooling that greps for it keeps working) instead
        # of silently looking like a single-node run.
        trace = synthetic_trace()
        trace[0] = dict(trace[0], nodes=3)
        report = render_trace_report(trace)
        assert "## Node power" in report
        assert "no node power transitions recorded" in report

    def test_malformed_node_power_events_degrade_gracefully(self):
        # Mixed/truncated traces can hold node_power events missing the
        # timestamp or state map; the walk skips them instead of crashing,
        # and a run_end without duration_s falls back to the last event.
        trace = synthetic_trace()
        trace[0] = dict(trace[0], nodes=2)
        trace.insert(2, {"event": "node_power"})
        trace.insert(3, {"event": "node_power", "t": None, "states": None})
        trace.insert(
            4, {"event": "node_power", "t": 0.4, "states": {"0": "on", "1": "off"}}
        )
        trace[-1] = {"event": "run_end", "queries_completed": 1}
        report = render_trace_report(trace)
        assert "3 node power transitions" in report
        assert "node 1: powered off 1x" in report

    def test_partial_trace_renders(self):
        # A truncated ring buffer may hold no run_start; still render.
        report = render_trace_report(synthetic_trace()[3:])
        assert "completion" in report

    def test_samples_csv(self):
        rows = list(
            csv.DictReader(io.StringIO(trace_samples_csv(synthetic_trace())))
        )
        assert len(rows) == 1
        assert rows[0]["psu_power_w"] == "110.0"
        assert rows[0]["avg_latency_s"] == ""

    def test_samples_csv_requires_samples(self):
        with pytest.raises(SimulationError):
            trace_samples_csv([{"event": "arrival", "t": 0.0}])
