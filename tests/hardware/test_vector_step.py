"""A/B tests for the vectorized (node-axis) fleet tick.

The machine's hot path retires counters and burns RAPL energy through
struct-of-arrays banks — one vectorized pass over the socket axis per
tick — while dark nodes are handled by masks.  These tests pin the
contract that makes that safe: the banked paths are *bit-identical* to
the scalar per-counter paths (same IEEE float64 operations, different
loop), and a full fleet run folds to the same joule regardless of
whether ticks execute one by one or as masked spans, across every
cluster preset and node power state (on, off-residual, booting).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.hardware.counters import InstructionCounter, InstructionCounterBank
from repro.hardware.cluster import CLUSTER_PRESETS, NodePowerState
from repro.hardware.presets import get_preset
from repro.hardware.rapl import RaplCounter, RaplCounterBank, RaplDomain
from repro.loadprofiles import constant_profile, spike_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.telemetry import TraceRecorder
from repro.workloads import KeyValueWorkload, WorkloadVariant

TICK_S = 0.002


def _rng():
    return np.random.default_rng(1234)


class TestInstructionBankAB:
    """Banked accumulation vs the scalar per-counter path, bitwise."""

    def test_tick_accumulate_matches_scalar(self):
        rng = _rng()
        vec = InstructionCounterBank(5)
        scalars = [InstructionCounter() for _ in range(5)]
        t = 0.0
        for _ in range(50):
            t += TICK_S
            instr = rng.uniform(0.0, 1e7, size=5)
            vec.accumulate_all(instr, t)
            for i, c in enumerate(scalars):
                c.accumulate(float(instr[i]), t)
        for i, c in enumerate(scalars):
            assert vec.totals[i] == c.total_instructions
            assert vec.now_s[i] == c._now_s

    @pytest.mark.parametrize("n_ticks", [1, 5, 64])
    def test_span_matches_per_tick_scalar(self, n_ticks):
        rng = _rng()
        vec = InstructionCounterBank(4)
        tick = InstructionCounterBank(4)
        start = rng.uniform(0.0, 1e9, size=4)
        vec.totals[:] = start
        tick.totals[:] = start
        instr = rng.uniform(0.0, 1e6, size=4)
        times = np.add.accumulate(np.full(n_ticks, TICK_S)) + 7.0
        vec.accumulate_span_all(instr, times)
        for t in times:
            tick.accumulate_all(instr, float(t))
        assert np.array_equal(vec.totals, tick.totals)
        assert np.array_equal(vec.now_s, tick.now_s)


class TestRaplBankAB:
    """Banked RAPL energy vs the scalar counter, bitwise — including the
    slow publish replay for counters whose period spans several ticks."""

    PERIODS = [0.0005, 0.001, 0.003, 0.01]

    def _banks(self):
        # The scalar path reads its publish period from the socket
        # params (the bank period array mirrors them in the machine),
        # so each scalar twin gets params matching its bank slot.
        periods = np.array(self.PERIODS)
        vec = RaplCounterBank(periods.copy())
        scalars = []
        for period in self.PERIODS:
            params = replace(
                get_preset("haswell_ep"), rapl_update_period_s=period
            )
            scalars.append(
                RaplCounter(
                    params, RaplDomain.PACKAGE, np.random.default_rng(0)
                )
            )
        return vec, scalars

    def test_tick_accumulate_matches_scalar(self):
        rng = _rng()
        vec, scalars = self._banks()
        t = 0.0
        for _ in range(40):
            t += TICK_S
            powers = rng.uniform(5.0, 150.0, size=len(scalars))
            vec.accumulate_all(powers, TICK_S, t)
            for i, c in enumerate(scalars):
                c.accumulate(float(powers[i]), TICK_S, t)
        for i, c in enumerate(scalars):
            assert vec.true_energy_j[i] == c.true_energy_j
            assert vec.published_energy_j[i] == c._published_energy_j
            assert vec.published_at_s[i] == c._published_at_s

    @pytest.mark.parametrize("n_ticks", [1, 4, 48])
    def test_span_matches_per_tick_scalar(self, n_ticks):
        """Mixed periods force the partial-fast path: some counters bulk
        publish, the slow ones replay their publish grid scalar-wise."""
        rng = _rng()
        vec, scalars = self._banks()
        powers = rng.uniform(5.0, 150.0, size=len(scalars))
        warm = 0.0
        for _ in range(3):  # desynchronize published_at_s from the grid
            warm += TICK_S
            vec.accumulate_all(powers, TICK_S, warm)
            for i, c in enumerate(scalars):
                c.accumulate(float(powers[i]), TICK_S, warm)
        times = np.add.accumulate(np.full(n_ticks, TICK_S)) + warm
        vec.accumulate_span_all(powers, TICK_S, times)
        for i, c in enumerate(scalars):
            for t in times:
                c.accumulate(float(powers[i]), TICK_S, float(t))
            assert vec.true_energy_j[i] == c.true_energy_j
            assert vec.published_energy_j[i] == c._published_energy_j
            assert vec.published_at_s[i] == c._published_at_s
            assert vec.now_s[i] == c._now_s

    def test_scalar_span_matches_scalar_ticks(self):
        """The per-counter span API itself replays ticks exactly."""
        params = get_preset("haswell_ep")
        a = RaplCounter(params, RaplDomain.DRAM, np.random.default_rng(0))
        b = RaplCounter(params, RaplDomain.DRAM, np.random.default_rng(0))
        times = np.add.accumulate(np.full(20, TICK_S)) + 1.0
        a.accumulate_span(42.5, TICK_S, times)
        for t in times:
            b.accumulate(42.5, TICK_S, float(t))
        assert a.true_energy_j == b.true_energy_j
        assert a._published_energy_j == b._published_energy_j


def _cluster_run(preset, *, macro, profile=None, nodes=2):
    if profile is None:
        # A spike parks the satellite in the quiet lead-in, boots it at
        # the overload, and reactivates it — every node power state, on
        # every preset.
        profile = spike_profile(duration_s=12.0)
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=profile,
        policy="ecl-cluster",
        seed=0,
        cluster=CLUSTER_PRESETS[preset](nodes),
        macro_step=macro,
    )
    recorder = TraceRecorder()
    runner = SimulationRunner(config, observers=[recorder])
    result = runner.run()
    return result, runner, recorder


def _node_states_seen(recorder):
    seen = set()
    for event in recorder.events():
        if event.get("event") == "node_power":
            seen.update((event.get("states") or {}).values())
    return seen


class TestFleetStepAB:
    """Masked span stepping vs per-tick stepping, per preset, through
    every node power state the controller can produce."""

    @pytest.mark.parametrize("preset", sorted(CLUSTER_PRESETS))
    def test_macro_bit_identical_across_power_states(self, preset):
        on, _, rec = _cluster_run(preset, macro=True)
        off, _, _ = _cluster_run(preset, macro=False)
        assert on.total_energy_j == off.total_energy_j
        assert on.queries_submitted == off.queries_submitted
        assert on.queries_completed == off.queries_completed
        assert on.latencies_s == off.latencies_s
        # The scenario must actually have exercised the mask states:
        # a park (off) and a wake (booting) both happen under this load.
        assert {"off", "booting"} <= _node_states_seen(rec)

    @pytest.mark.parametrize("preset", sorted(CLUSTER_PRESETS))
    def test_anchor_node_never_leaves_on(self, preset):
        """Node 0 is the anchor: every transition event keeps it on."""
        _, runner, rec = _cluster_run(
            preset,
            macro=True,
            profile=constant_profile(duration_s=6.0, fraction=0.1),
        )
        machine = runner.machine
        assert machine.node_power_state(0) is NodePowerState.ON
        for event in rec.events():
            if event.get("event") == "node_power":
                states = event.get("states") or {}
                assert states.get("0", "on") == "on"
        # And the satellites did park, so the invariant was contested.
        assert machine.node_power_state(1) is NodePowerState.OFF
