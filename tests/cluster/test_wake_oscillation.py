"""Regression tests for the park/boot oscillation at the setpoint.

The original wake protection was a flag cleared by the first replan that
saw the woken node live.  Under a flat near-setpoint load that replan
can momentarily read below the spread threshold, so the consolidation
planner re-parked the still-empty node it had just booted — and the
overload that triggered the wake immediately re-woke it, cycling node
power indefinitely.  The fix is a time-based cooldown
(``wake_hold_intervals`` planning intervals on the tick clock); these
tests pin both the fix and the failure mode it replaced (setting the
hold to zero restores the unprotected behaviour and must oscillate,
proving the regression test bites).
"""

from repro.hardware.cluster import homogeneous_cluster
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner
from repro.telemetry import TraceRecorder
from repro.workloads import KeyValueWorkload, WorkloadVariant


def _boot_cycles(fraction, *, hold=None, duration_s=16.0, macro=True):
    """Run a constant load; count each node's off->booting transitions."""
    config = RunConfiguration(
        workload=KeyValueWorkload(WorkloadVariant.NON_INDEXED),
        profile=constant_profile(duration_s=duration_s, fraction=fraction),
        policy="ecl-cluster",
        seed=0,
        cluster=homogeneous_cluster(2),
        macro_step=macro,
    )
    recorder = TraceRecorder()
    runner = SimulationRunner(config, observers=[recorder])
    if hold is not None:
        runner.policy.wake_hold_intervals = hold
    runner.run()
    previous: dict | None = None
    boots: dict[str, int] = {}
    for event in recorder.events():
        if event.get("event") != "node_power":
            continue
        states = event.get("states") or {}
        for node, state in states.items():
            if state == "booting" and (
                previous is None or previous.get(node) != "booting"
            ):
                boots[node] = boots.get(node, 0) + 1
        previous = states
    return boots, runner


class TestWakeOscillation:
    def test_constant_near_setpoint_load_does_not_cycle(self):
        """Overloaded flat load: the satellite boots once and stays on."""
        boots, runner = _boot_cycles(1.1)
        assert boots == {"1": 1}
        assert runner.policy.powered_off_nodes == frozenset()

    def test_per_tick_path_agrees(self):
        boots, runner = _boot_cycles(1.1, macro=False)
        assert boots == {"1": 1}
        assert runner.policy.powered_off_nodes == frozenset()

    def test_mistaken_wake_parks_once_deliberately(self):
        """Just-below-threshold load: one boot, one park, no cycling.

        The hold lapsing does not re-trigger a wake — re-waking needs a
        fresh spread trigger, so a load the fleet can serve on one node
        ends with the satellite parked exactly once after its cooldown.
        """
        boots, runner = _boot_cycles(0.9)
        assert boots == {"1": 1}
        assert runner.policy.powered_off_nodes == frozenset({1})

    def test_zero_hold_reproduces_the_oscillation(self):
        """Disabling the cooldown restores the bug: the planner re-parks
        the freshly booted, still-empty node and the cycle repeats."""
        boots, _ = _boot_cycles(1.1, hold=0)
        assert boots.get("1", 0) >= 2
