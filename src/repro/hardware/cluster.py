"""Cluster topology: N nodes, each a full server parameter set.

The paper's system under test is one 2-socket server; this module lifts
the hardware description to a shared-nothing *fleet* of such servers
(ROADMAP item 1, after Schall & Härder's wimpy/brawny cluster studies in
PAPERS.md).  A :class:`ClusterSpec` is a tuple of :class:`NodeSpec`
entries — each node brings its own
:class:`~repro.hardware.presets.HaswellEPParameters` (so mixed
wimpy/brawny fleets are expressible) plus node-level power constants the
single-server model has no word for: power-up latency, the residual wall
draw of a node that is switched *off* (BMC, standby rails), and the
boot-phase draw.

:class:`~repro.hardware.machine.Machine` consumes a spec by
concatenating every node's sockets into one flat (node, socket) axis:
global socket ids are assigned node-major, so the existing
struct-of-arrays step path vectorizes over an N-node fleet exactly like
over a 2-socket box.  ``cluster=None`` keeps the historical single-node
machine bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hardware.presets import HaswellEPParameters, get_preset


class NodePowerState(enum.Enum):
    """Power state of one cluster node (whole server)."""

    ON = "on"
    BOOTING = "booting"
    OFF = "off"


@dataclass(frozen=True)
class NodeSpec:
    """One node of the cluster: server parameters + node power constants.

    Attributes:
        node_id: unique node identifier within the cluster.
        params: the node's full hardware parameter set (sockets, clocks,
            power model constants — see :mod:`repro.hardware.presets`).
        preset: registry name the parameters came from (informational).
        power_up_s: wall time from power-on command to the node serving
            work again (BIOS + OS + DBMS warm-up, compressed to the
            simulation's time scale).
        off_residual_w: wall power of the node while OFF — BMC, NIC
            standby and PSU trickle draw that never goes away.
        boot_power_w: package-side power while BOOTING (fans at full,
            cores untamed by any governor).
    """

    node_id: int
    params: HaswellEPParameters = field(default_factory=HaswellEPParameters)
    preset: str = "haswell_ep"
    power_up_s: float = 2.0
    off_residual_w: float = 6.0
    boot_power_w: float = 60.0


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered fleet of nodes.

    Global socket ids are node-major: node 0's sockets come first, then
    node 1's, and so on.  Validation raises
    :class:`~repro.errors.SimulationError` with actionable messages —
    these are the errors a mis-typed ``--nodes``/``--cluster-preset``
    surface to users.
    """

    nodes: tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SimulationError(
                "a ClusterSpec needs at least one node, got a zero-node "
                "cluster"
            )
        seen: set[int] = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise SimulationError(
                    f"duplicate node id {node.node_id} in ClusterSpec; "
                    f"node ids must be unique"
                )
            seen.add(node.node_id)
            if node.power_up_s < 0:
                raise SimulationError(
                    f"node {node.node_id}: power_up_s must be >= 0, "
                    f"got {node.power_up_s}"
                )
            if node.off_residual_w < 0 or node.boot_power_w < 0:
                raise SimulationError(
                    f"node {node.node_id}: off_residual_w and boot_power_w "
                    f"must be >= 0"
                )
        widths = {n.params.threads_per_core for n in self.nodes}
        if len(widths) > 1:
            raise SimulationError(
                f"nodes disagree on threads_per_core ({sorted(widths)}); "
                f"the SMT width must be uniform across the cluster"
            )

    # -- sizes ---------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def total_sockets(self) -> int:
        return sum(n.params.socket_count for n in self.nodes)

    @property
    def total_threads(self) -> int:
        return sum(n.params.total_threads for n in self.nodes)

    # -- socket axis ---------------------------------------------------------

    def socket_node_map(self) -> tuple[int, ...]:
        """Node *index* (position in :attr:`nodes`) per global socket id."""
        out: list[int] = []
        for index, node in enumerate(self.nodes):
            out.extend([index] * node.params.socket_count)
        return tuple(out)

    def node_socket_ids(self) -> tuple[tuple[int, ...], ...]:
        """Global socket ids per node index."""
        out: list[tuple[int, ...]] = []
        offset = 0
        for node in self.nodes:
            count = node.params.socket_count
            out.append(tuple(range(offset, offset + count)))
            offset += count
        return tuple(out)

    def socket_params(self) -> tuple[HaswellEPParameters, ...]:
        """The owning node's parameter set per global socket id."""
        out: list[HaswellEPParameters] = []
        for node in self.nodes:
            out.extend([node.params] * node.params.socket_count)
        return tuple(out)

    def cores_per_socket(self) -> tuple[int, ...]:
        """Physical-core count per global socket id."""
        out: list[int] = []
        for node in self.nodes:
            out.extend([node.params.cores_per_socket] * node.params.socket_count)
        return tuple(out)


# --------------------------------------------------------------------------
# Builders and the cluster-preset registry (consumed by the CLI).
# --------------------------------------------------------------------------


def homogeneous_cluster(
    node_count: int, preset: str = "haswell_ep", **node_kwargs: float
) -> ClusterSpec:
    """N identical nodes of one hardware preset.

    ``node_kwargs`` forwards to every :class:`NodeSpec` (e.g.
    ``power_up_s=5.0``).
    """
    if node_count < 1:
        raise SimulationError(
            f"a cluster needs at least one node, got {node_count}"
        )
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(
                node_id=i, params=get_preset(preset), preset=preset,
                **node_kwargs,
            )
            for i in range(node_count)
        )
    )


def mixed_cluster(node_count: int) -> ClusterSpec:
    """One brawny anchor node plus wimpy satellites.

    Node 0 is the always-on brawny server (the cluster controller never
    powers off node 0); the remaining nodes are wimpy and cheap to park.
    """
    if node_count < 1:
        raise SimulationError(
            f"a cluster needs at least one node, got {node_count}"
        )
    nodes = [NodeSpec(node_id=0, params=get_preset("haswell_ep"),
                      preset="haswell_ep")]
    for i in range(1, node_count):
        nodes.append(
            NodeSpec(
                node_id=i,
                params=get_preset("wimpy_node"),
                preset="wimpy_node",
                power_up_s=1.0,
                off_residual_w=2.0,
                boot_power_w=18.0,
            )
        )
    return ClusterSpec(nodes=tuple(nodes))


#: Cluster presets the CLI's ``--cluster-preset`` resolves through.
CLUSTER_PRESETS = {
    "haswell_ep": lambda n: homogeneous_cluster(n, "haswell_ep"),
    "wimpy_node": lambda n: homogeneous_cluster(
        n, "wimpy_node", power_up_s=1.0, off_residual_w=2.0, boot_power_w=18.0
    ),
    "mixed": mixed_cluster,
}


def build_cluster(preset: str, node_count: int) -> ClusterSpec:
    """Build a cluster from a registered cluster preset.

    Raises:
        SimulationError: for unknown preset names.
    """
    try:
        factory = CLUSTER_PRESETS[preset]
    except KeyError:
        raise SimulationError(
            f"unknown cluster preset {preset!r}; "
            f"choose from {', '.join(sorted(CLUSTER_PRESETS))}"
        ) from None
    return factory(node_count)
