"""Fig. 5 — socket power vs uncore clock and the inter-socket halt rule.

Paper: a socket's uncore can halt only when *both* sockets halted theirs;
socket 1 statically draws slightly less than socket 0 (an asymmetry the
authors measured but could not explain).
"""

from repro.hardware.machine import Machine
from repro.hardware.perfmodel import SocketLoad
from repro.workloads.micro import COMPUTE_BOUND

from _shared import heading


def measure():
    rows = {}
    # Case A: the whole machine idles — uncore halt allowed.
    machine = Machine(seed=3)
    machine.cstates.set_active_threads(set())
    for sid in (0, 1):
        machine.set_idle(sid)
        machine.frequency.set_uncore_auto(sid)
    step = machine.step(0.5)
    rows["halted (both sockets idle)"] = (
        step.sockets[0].power.socket_total_w,
        step.sockets[1].power.socket_total_w,
        step.sockets[0].uncore_halted,
    )
    # Case B: socket 1 is busy; socket 0 idle but pinned uncore frequencies.
    for uncore in (1.2, 2.1, 3.0):
        machine = Machine(seed=3)
        machine.apply_socket_threads(0, set())
        machine.set_idle(0)
        machine.frequency.set_uncore_frequency(0, uncore)
        machine.apply_socket_threads(1, set(range(12, 24)))
        machine.frequency.set_all_core_frequencies(2.6, 0.0)
        machine.set_socket_load(
            1, SocketLoad(characteristics=COMPUTE_BOUND, demand_instructions_per_s=None)
        )
        step = machine.step(0.5)
        rows[f"idle socket, uncore {uncore} GHz (peer busy)"] = (
            step.sockets[0].power.socket_total_w,
            step.sockets[1].power.socket_total_w,
            step.sockets[0].uncore_halted,
        )
    return rows


def test_fig05_uncore_dependency(run_once):
    rows = run_once(measure)

    heading("Fig. 5 — socket power (W) for uncore states")
    print(f"{'state':>42} {'socket0':>9} {'socket1':>9} {'halted0':>8}")
    for name, (s0, s1, halted) in rows.items():
        print(f"{name:>42} {s0:9.1f} {s1:9.1f} {str(halted):>8}")

    halted_s0, halted_s1, halted_flag = rows["halted (both sockets idle)"]
    assert halted_flag  # machine-wide idle allows the halt

    # A busy peer forbids halting: even at the lowest pinned uncore the
    # idle socket draws much more than in the halted state.
    low_s0, _, low_halted = rows["idle socket, uncore 1.2 GHz (peer busy)"]
    assert not low_halted
    assert low_s0 > halted_s0 + 10.0

    # Power rises with the pinned uncore clock.
    s0_by_uncore = [
        rows[f"idle socket, uncore {u} GHz (peer busy)"][0] for u in (1.2, 2.1, 3.0)
    ]
    assert s0_by_uncore[0] < s0_by_uncore[1] < s0_by_uncore[2]
    # ~12 W span from min to max uncore (Fig. 8's measurement).
    assert 8.0 < s0_by_uncore[2] - s0_by_uncore[0] < 16.0

    # The unexplained socket asymmetry: socket 1 slightly below socket 0.
    assert halted_s1 < halted_s0
