"""Inter-socket communication threads.

The second level of the hierarchical message-passing layer (paper §3):
messages targeting partitions on a remote socket are not sent worker-to-
worker.  Instead, each socket runs one *communication thread* that

1. collects outbound messages destined for each remote socket into a
   per-destination buffer, and
2. periodically transfers whole buffers to the peer communication thread,
   which injects them into its local :class:`IntraSocketHub`.

Batching amortizes the interconnect cost; the transfer itself charges a
small instruction cost on both sides (the communication threads do real
work) and a latency of one flush interval, which the simulation realizes
by flushing once per tick.

The router is also the authority on partition *homes*.  Partition
migration re-homes through :meth:`InterSocketRouter.transfer_partition`;
because delivery re-checks the home per message at flush time, messages
that were already in flight toward the old socket when a partition moved
are forwarded onward (paying another transfer hop) — never lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import MessagingError
from repro.dbms.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.dbms.intra_socket import SMALL_RUN as _SMALL_BANK
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, WorkCost


class _BankChunk:
    """A columnar slice of bank messages riding one outbound buffer.

    The vectorized counterpart of buffering ``len(targets)`` individual
    messages: the parallel columns (numpy arrays, or plain lists for
    small chunks off the router's scalar fast path) keep the messages'
    arrival order, and the chunk occupies one deque slot while counting
    as its full message total for buffered-demand and transfer-cost
    accounting.
    """

    __slots__ = ("targets", "instructions", "bytes_accessed", "query_ids")

    def __init__(
        self,
        targets,
        instructions,
        bytes_accessed,
        query_ids,
    ) -> None:
        self.targets = targets
        self.instructions = instructions
        self.bytes_accessed = bytes_accessed
        self.query_ids = query_ids

    @property
    def count(self) -> int:
        return len(self.targets)

#: Instruction cost charged per transferred message on each side.
#: (Default-config alias; tunable per run through ``EngineConfig``.)
TRANSFER_INSTRUCTIONS_PER_MESSAGE = (
    DEFAULT_ENGINE_CONFIG.transfer_instructions_per_message
)
#: Fixed instruction cost per buffer flush (syscall-free polling transfer).
TRANSFER_INSTRUCTIONS_PER_FLUSH = (
    DEFAULT_ENGINE_CONFIG.transfer_instructions_per_flush
)
#: Interconnect bytes per message (header + payload estimate).
TRANSFER_BYTES_PER_MESSAGE = DEFAULT_ENGINE_CONFIG.transfer_bytes_per_message


@dataclass(frozen=True)
class TransferStats:
    """Totals of one flush cycle, for cost accounting and tests."""

    messages_moved: int
    flushes: int
    cost_by_socket: dict[int, WorkCost]
    #: Messages whose target partition moved while they were in flight;
    #: re-buffered toward the new home instead of delivered (a subset of
    #: ``messages_moved``).
    forwarded: int = 0


#: Shared result of a flush cycle with no buffered traffic (the common
#: case on idle and steady ticks).  Frozen and never mutated by callers.
_EMPTY_TRANSFER = TransferStats(messages_moved=0, flushes=0, cost_by_socket={})


class InterSocketRouter:
    """Outbound buffers and transfer logic for all communication threads."""

    def __init__(
        self,
        hubs: dict[int, IntraSocketHub],
        config: EngineConfig | None = None,
        socket_node: dict[int, int] | None = None,
    ):
        if not hubs:
            raise MessagingError("router needs at least one socket hub")
        self._hubs = hubs
        self._config = config or DEFAULT_ENGINE_CONFIG
        #: Node index per socket id; routes crossing a node boundary pay
        #: the (higher) inter-node transfer costs.  ``None`` = the classic
        #: single-server machine: every route is intra-node.
        if socket_node is None:
            socket_node = {sid: 0 for sid in hubs}
        self._socket_node = socket_node
        #: (source socket, destination socket) -> buffered messages.
        self._outbound: dict[tuple[int, int], deque[Message]] = {}
        #: Routes that cross a node boundary (empty on one node).
        self._internode: set[tuple[int, int]] = set()
        for src in hubs:
            for dst in hubs:
                if src != dst:
                    self._outbound[(src, dst)] = deque()
                    if socket_node[src] != socket_node[dst]:
                        self._internode.add((src, dst))
        self._partition_home: dict[int, int] = {}
        for socket_id, hub in hubs.items():
            for pid in hub.partition_ids:
                self._partition_home[pid] = socket_id
        #: Dense mirror of ``_partition_home`` for columnar home lookups.
        self._home_array = np.full(
            max(self._partition_home) + 1, -1, dtype=np.int64
        )
        for pid, sid in self._partition_home.items():
            self._home_array[pid] = sid
        #: Socket-id span for packing (src, dst) route keys into ints.
        self._socket_span = max(hubs) + 1
        #: Maintained per-route and total buffered-message counts (chunks
        #: count their full message total), replacing the per-call queue
        #: scans of ``total_buffered``.
        self._buffered: dict[tuple[int, int], int] = {
            key: 0 for key in self._outbound
        }
        self._total_buffered = 0
        self.total_messages_moved = 0
        self.total_forwarded = 0

    def _buffered_add(self, key: tuple[int, int], count: int) -> None:
        self._buffered[key] += count
        self._total_buffered += count

    # -- routing ------------------------------------------------------------

    def home_socket(self, partition_id: int) -> int:
        """Socket on which a partition is resident.

        Raises:
            MessagingError: for unknown partitions.
        """
        try:
            return self._partition_home[partition_id]
        except KeyError:
            raise MessagingError(f"unknown partition id {partition_id}") from None

    def route(self, source_socket: int, message: Message) -> bool:
        """Route a message from a socket toward its target partition.

        Local targets go straight into the local hub; remote targets are
        buffered for the next communication-thread flush.  Returns True
        when the message was delivered locally (False = buffered).
        """
        if source_socket not in self._hubs:
            raise MessagingError(f"unknown source socket {source_socket}")
        destination = self.home_socket(message.target_partition)
        if destination == source_socket:
            self._hubs[source_socket].enqueue(message)
            return True
        self._outbound[(source_socket, destination)].append(message)
        self._buffered_add((source_socket, destination), 1)
        return False

    def route_bank(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        instructions: np.ndarray,
        bytes_accessed: np.ndarray,
        query_ids: np.ndarray,
    ) -> None:
        """Route a columnar message block (parallel arrays, arrival order).

        The per-hub and per-route groupings are stable — each hub and
        each outbound buffer receives exactly its subsequence of the
        block, in block order — so delivery and drain order match routing
        the messages one by one.
        """
        n = len(targets)
        if n <= _SMALL_BANK:
            # Small blocks stay off numpy end to end: group with plain
            # dicts of lists (per-group block order preserved), deliver
            # locals then buffer remotes in the vector path's ascending
            # group order.  The hubs and chunks accept the lists as-is.
            src_list = sources if type(sources) is list else sources.tolist()
            tgt_list = targets if type(targets) is list else targets.tolist()
            instr_list = (
                instructions
                if type(instructions) is list
                else instructions.tolist()
            )
            byte_list = (
                bytes_accessed
                if type(bytes_accessed) is list
                else bytes_accessed.tolist()
            )
            qid_list = (
                query_ids if type(query_ids) is list else query_ids.tolist()
            )
            homes = self._partition_home
            local_groups: dict = {}
            remote_groups: dict = {}
            for j in range(n):
                pid = tgt_list[j]
                dst = homes.get(pid)
                if dst is None:
                    raise MessagingError(f"unknown partition id {pid}")
                src = src_list[j]
                if dst == src:
                    group = local_groups.get(src)
                    if group is None:
                        group = local_groups[src] = ([], [], [], [])
                else:
                    group = remote_groups.get((src, dst))
                    if group is None:
                        group = remote_groups[(src, dst)] = ([], [], [], [])
                group[0].append(pid)
                group[1].append(instr_list[j])
                group[2].append(byte_list[j])
                group[3].append(qid_list[j])
            for sid in sorted(local_groups):
                group = local_groups[sid]
                self._hubs[sid].enqueue_bank(
                    group[0], group[1], group[2], group[3]
                )
            for route in sorted(remote_groups):
                group = remote_groups[route]
                if route not in self._outbound:
                    raise MessagingError(
                        f"unknown source socket {route[0]}"
                    )
                self._outbound[route].append(
                    _BankChunk(group[0], group[1], group[2], group[3])
                )
                self._buffered_add(route, len(group[0]))
            return
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        instructions = np.asarray(instructions, dtype=np.float64)
        bytes_accessed = np.asarray(bytes_accessed, dtype=np.float64)
        query_ids = np.asarray(query_ids, dtype=np.int64)
        homes = self._home_array[targets]
        if homes.size and int(homes.min()) < 0:
            bad = int(targets[np.argmin(homes)])
            raise MessagingError(f"unknown partition id {bad}")
        local = homes == sources
        local_idx = np.nonzero(local)[0]
        if local_idx.size:
            local_sources = sources[local_idx]
            for sid in np.unique(local_sources):
                m = local_idx[local_sources == sid]
                self._hubs[int(sid)].enqueue_bank(
                    targets[m], instructions[m], bytes_accessed[m], query_ids[m]
                )
        remote_idx = np.nonzero(~local)[0]
        if remote_idx.size:
            span = self._socket_span
            keys = sources[remote_idx] * span + homes[remote_idx]
            for key in np.unique(keys):
                m = remote_idx[keys == key]
                route = (int(key) // span, int(key) % span)
                if route not in self._outbound:
                    raise MessagingError(f"unknown source socket {route[0]}")
                self._outbound[route].append(
                    _BankChunk(
                        targets[m],
                        instructions[m],
                        bytes_accessed[m],
                        query_ids[m],
                    )
                )
                self._buffered_add(route, int(m.size))

    def buffered_count(self, source_socket: int, destination_socket: int) -> int:
        """Messages waiting in one outbound buffer."""
        key = (source_socket, destination_socket)
        if key not in self._outbound:
            raise MessagingError(f"no route {source_socket} -> {destination_socket}")
        return self._buffered[key]

    @property
    def total_buffered(self) -> int:
        """Messages waiting across all outbound buffers."""
        return self._total_buffered

    def buffered_from(self, source_socket: int) -> int:
        """Messages waiting in all outbound buffers of one sender.

        A socket with a non-empty sender side still owes flush work, so
        the drain logic must not park it yet.
        """
        if source_socket not in self._hubs:
            raise MessagingError(f"unknown source socket {source_socket}")
        return sum(
            count
            for (src, _dst), count in self._buffered.items()
            if src == source_socket
        )

    def is_internode(self, source_socket: int, destination_socket: int) -> bool:
        """Whether a route crosses a node boundary (pays network costs)."""
        return (source_socket, destination_socket) in self._internode

    # -- migration ------------------------------------------------------------

    def rehome_partition(self, partition_id: int, socket_id: int) -> None:
        """Point a partition's home at another socket (catalog only)."""
        self.home_socket(partition_id)  # validate the partition exists
        if socket_id not in self._hubs:
            raise MessagingError(f"unknown socket id {socket_id}")
        self._partition_home[partition_id] = socket_id
        self._home_array[partition_id] = socket_id

    def transfer_partition(
        self,
        partition_id: int,
        target_socket: int,
        messages: list[Message],
        data_bytes: float,
    ) -> WorkCost:
        """Move a partition's home and ship its evicted queue.

        The queued messages enter the normal outbound path toward the new
        home (one flush of latency, standard per-message costs on both
        sides).  The returned :class:`WorkCost` is the *data* copy — a
        per-byte instruction cost over ``data_bytes`` plus one flush
        overhead — which the caller charges to **each** of the two
        sockets involved.

        Raises:
            MessagingError: for unknown ids or a same-socket transfer.
        """
        source = self.home_socket(partition_id)
        if target_socket not in self._hubs:
            raise MessagingError(f"unknown socket id {target_socket}")
        if target_socket == source:
            raise MessagingError(
                f"partition {partition_id} already lives on socket {source}"
            )
        if data_bytes < 0:
            raise MessagingError(f"negative data_bytes {data_bytes}")
        self._partition_home[partition_id] = target_socket
        self._home_array[partition_id] = target_socket
        if messages:
            self._outbound[(source, target_socket)].extend(messages)
            self._buffered_add((source, target_socket), len(messages))
        if (source, target_socket) in self._internode:
            # Crossing a node boundary: the copy runs over the network,
            # not the coherent interconnect.
            instructions = (
                self._config.internode_migration_instructions_per_byte
                * data_bytes
                + self._config.internode_instructions_per_flush
            )
        else:
            instructions = (
                self._config.migration_instructions_per_byte * data_bytes
                + self._config.transfer_instructions_per_flush
            )
        return WorkCost(instructions=instructions, bytes_accessed=data_bytes)

    # -- transfer ------------------------------------------------------------

    def flush(self) -> TransferStats:
        """Execute one transfer cycle of every communication thread.

        Moves every buffered message to its destination hub and returns
        the instruction/byte cost charged on each socket (sender and
        receiver sides both pay per message; each non-empty buffer pays
        one flush overhead on the sender).  The home is re-checked per
        message on delivery: a message whose partition migrated while it
        was in flight is forwarded toward the new home — it pays another
        hop next flush instead of being delivered to (or lost on) the
        stale socket.
        """
        if not self._total_buffered:
            # Nothing buffered anywhere: the full cycle would only add
            # 0.0 to every socket's overhead balance (an exact no-op for
            # the non-negative balances), so skip building the cost map.
            return _EMPTY_TRANSFER
        cost_by_socket: dict[int, WorkCost] = {
            sid: WorkCost(instructions=0.0) for sid in self._hubs
        }
        intra_message = self._config.transfer_instructions_per_message
        intra_flush = self._config.transfer_instructions_per_flush
        inter_message = self._config.internode_instructions_per_message
        inter_flush = self._config.internode_instructions_per_flush
        bytes_per_message = self._config.transfer_bytes_per_message
        moved = 0
        flushes = 0
        forwarded = 0
        #: (destination route, Message | _BankChunk) in sweep order.
        forwards: list[tuple[tuple[int, int], object]] = []
        for (src, dst), buffer in self._outbound.items():
            if not buffer:
                continue
            if (src, dst) in self._internode:
                per_message, per_flush = inter_message, inter_flush
            else:
                per_message, per_flush = intra_message, intra_flush
            flushes += 1
            count = 0
            hub = self._hubs[dst]
            while buffer:
                item = buffer.popleft()
                if type(item) is _BankChunk:
                    count += item.count
                    if type(item.targets) is list:
                        # Scalar chunk: settle the common all-still-home
                        # case without numpy; a rehomed target (rare —
                        # a migration landed mid-flight) falls through
                        # to the vector split below.
                        home_map = self._partition_home
                        if all(
                            home_map[pid] == dst for pid in item.targets
                        ):
                            hub.enqueue_bank(
                                item.targets,
                                item.instructions,
                                item.bytes_accessed,
                                item.query_ids,
                            )
                            continue
                        item = _BankChunk(
                            np.asarray(item.targets, dtype=np.int64),
                            np.asarray(item.instructions, dtype=np.float64),
                            np.asarray(
                                item.bytes_accessed, dtype=np.float64
                            ),
                            np.asarray(item.query_ids, dtype=np.int64),
                        )
                    homes = self._home_array[item.targets]
                    delivered = homes == dst
                    if delivered.all():
                        hub.enqueue_bank(
                            item.targets,
                            item.instructions,
                            item.bytes_accessed,
                            item.query_ids,
                        )
                        continue
                    # A partition moved while the chunk was in flight:
                    # deliver the still-home subsequence, forward the
                    # rest as per-destination sub-chunks (block order is
                    # preserved within each).
                    if delivered.any():
                        m = np.nonzero(delivered)[0]
                        hub.enqueue_bank(
                            item.targets[m],
                            item.instructions[m],
                            item.bytes_accessed[m],
                            item.query_ids[m],
                        )
                    stray = np.nonzero(~delivered)[0]
                    stray_homes = homes[stray]
                    for home in np.unique(stray_homes):
                        m = stray[stray_homes == home]
                        forwards.append(
                            (
                                (dst, int(home)),
                                _BankChunk(
                                    item.targets[m],
                                    item.instructions[m],
                                    item.bytes_accessed[m],
                                    item.query_ids[m],
                                ),
                            )
                        )
                        forwarded += int(m.size)
                    continue
                count += 1
                home = self._partition_home[item.target_partition]
                if home == dst:
                    hub.enqueue(item)
                else:
                    forwards.append(((dst, home), item))
                    forwarded += 1
            moved += count
            self._buffered_add((src, dst), -count)
            per_side = WorkCost(
                instructions=per_message * count,
                bytes_accessed=bytes_per_message * count,
            )
            cost_by_socket[src] = cost_by_socket[src] + per_side + WorkCost(
                instructions=per_flush
            )
            cost_by_socket[dst] = cost_by_socket[dst] + per_side
        # Re-buffered after the sweep so a forwarded message always waits
        # a full flush interval per hop, independent of buffer iteration
        # order.
        for route, item in forwards:
            self._outbound[route].append(item)
            self._buffered_add(
                route, item.count if type(item) is _BankChunk else 1
            )
        self.total_messages_moved += moved
        self.total_forwarded += forwarded
        return TransferStats(
            messages_moved=moved,
            flushes=flushes,
            cost_by_socket=cost_by_socket,
            forwarded=forwarded,
        )
