"""Tests for C-states and the cross-socket uncore-halt dependency."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.hardware.cstates import CState, CStateModel
from repro.hardware.presets import haswell_ep_two_socket
from repro.hardware.topology import Topology


@pytest.fixture
def model():
    params = haswell_ep_two_socket()
    topo = Topology.build(
        params.socket_count, params.cores_per_socket, params.threads_per_core
    )
    return CStateModel(topo, params)


class TestActiveSet:
    def test_starts_all_active(self, model):
        assert len(model.active_threads) == 48

    def test_set_active_threads(self, model):
        model.set_active_threads({0, 1, 24})
        assert model.active_threads == frozenset({0, 1, 24})

    def test_unknown_thread_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.set_active_threads({0, 99})

    def test_park_unpark_roundtrip(self, model):
        model.park_thread(5)
        assert not model.thread_is_active(5)
        model.unpark_thread(5)
        assert model.thread_is_active(5)

    def test_park_unknown_raises(self, model):
        with pytest.raises(TopologyError):
            model.park_thread(99)

    def test_active_threads_on_socket(self, model):
        model.set_active_threads({0, 13, 24})
        assert model.active_threads_on_socket(0) == (0, 24)
        assert model.active_threads_on_socket(1) == (13,)


class TestCoreStates:
    def test_active_core_is_c0(self, model):
        model.set_active_threads({0})
        assert model.core_state(0, 0) is CState.C0

    def test_sibling_keeps_core_c0(self, model):
        model.set_active_threads({24})  # HT sibling of core (0,0)
        assert model.core_state(0, 0) is CState.C0

    def test_parked_core_is_c6(self, model):
        model.set_active_threads(set())
        assert model.core_state(0, 0) is CState.C6

    def test_shallow_park_is_c1(self, model):
        model.set_active_threads(set())
        model.park_thread(0, shallow=True)
        assert model.core_state(0, 0) is CState.C1

    def test_unpark_clears_shallow(self, model):
        model.park_thread(0, shallow=True)
        model.unpark_thread(0)
        model.park_thread(0)  # deep this time
        model.park_thread(24)
        assert model.core_state(0, 0) is CState.C6

    def test_active_core_count(self, model):
        model.set_active_threads({0, 24, 1, 13})
        assert model.active_core_count(0) == 2  # cores (0,0) and (0,1)
        assert model.active_core_count(1) == 1


class TestUncoreHaltDependency:
    """Fig. 5: a socket's uncore may halt only when ALL sockets idle."""

    def test_all_idle_allows_halt(self, model):
        model.set_active_threads(set())
        assert model.machine_is_idle()
        assert model.uncore_may_halt(0)
        assert model.uncore_may_halt(1)

    def test_remote_activity_blocks_halt(self, model):
        model.set_active_threads({13})  # only socket 1 active
        assert model.socket_is_idle(0)
        assert not model.uncore_may_halt(0)
        assert not model.uncore_may_halt(1)

    def test_local_activity_blocks_halt(self, model):
        model.set_active_threads({0})
        assert not model.uncore_may_halt(0)

    def test_wake_latency_positive(self, model):
        assert model.wake_latency_s() > 0
