"""Tests for the intra-socket hub: queues + ownership protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MessagingError, OwnershipError
from repro.dbms.intra_socket import IntraSocketHub
from repro.dbms.messages import Message, WorkCost


def msg(partition: int, instructions: float = 100.0) -> Message:
    return Message(
        query_id=0, target_partition=partition, cost=WorkCost(instructions)
    )


@pytest.fixture
def hub():
    return IntraSocketHub(0, [0, 1, 2, 3])


class TestQueues:
    def test_enqueue_dequeue(self, hub):
        hub.enqueue(msg(1))
        assert hub.pending_messages == 1
        assert hub.queue_depth(1) == 1
        pid = hub.acquire_partition(worker_id=9)
        assert pid == 1
        batch = hub.dequeue_batch(9, 1)
        assert len(batch) == 1
        assert hub.pending_messages == 0

    def test_foreign_partition_rejected(self, hub):
        with pytest.raises(MessagingError):
            hub.enqueue(msg(99))

    def test_empty_hub_rejected(self):
        with pytest.raises(MessagingError):
            IntraSocketHub(0, [])

    def test_pending_cost_incremental(self, hub):
        hub.enqueue(msg(0, 100))
        hub.enqueue(msg(1, 250))
        assert hub.pending_cost_instructions() == pytest.approx(350)
        pid = hub.acquire_partition(1)
        hub.dequeue_batch(1, pid)
        assert hub.pending_cost_instructions() < 350

    def test_batch_size_respected(self, hub):
        for _ in range(10):
            hub.enqueue(msg(2))
        hub.acquire_specific(1, 2)
        batch = hub.dequeue_batch(1, 2, batch_size=4)
        assert len(batch) == 4
        assert hub.queue_depth(2) == 6

    def test_invalid_batch_size(self, hub):
        hub.acquire_specific(1, 2)
        with pytest.raises(MessagingError):
            hub.dequeue_batch(1, 2, batch_size=0)

    def test_requeue_front_preserves_order(self, hub):
        first, second = msg(0, 1), msg(0, 2)
        hub.enqueue(first)
        hub.enqueue(second)
        hub.acquire_specific(1, 0)
        batch = hub.dequeue_batch(1, 0)
        hub.requeue_front(1, batch)
        redrawn = hub.dequeue_batch(1, 0)
        assert [m.message_id for m in redrawn] == [
            first.message_id,
            second.message_id,
        ]


class TestOwnership:
    def test_exclusive_ownership(self, hub):
        hub.enqueue(msg(0))
        assert hub.acquire_specific(1, 0)
        assert not hub.acquire_specific(2, 0)
        assert hub.owner_of(0) == 1

    def test_acquire_skips_owned(self, hub):
        hub.enqueue(msg(0))
        hub.enqueue(msg(1))
        hub.acquire_specific(1, 0)
        pid = hub.acquire_partition(2)
        assert pid == 1

    def test_acquire_prefers_deepest_queue(self, hub):
        hub.enqueue(msg(0))
        for _ in range(3):
            hub.enqueue(msg(2))
        assert hub.acquire_partition(1) == 2

    def test_acquire_returns_none_without_work(self, hub):
        assert hub.acquire_partition(1) is None

    def test_release_requires_ownership(self, hub):
        hub.acquire_specific(1, 0)
        with pytest.raises(OwnershipError):
            hub.release_partition(2, 0)
        hub.release_partition(1, 0)
        assert hub.owner_of(0) is None

    def test_dequeue_requires_ownership(self, hub):
        hub.enqueue(msg(0))
        with pytest.raises(OwnershipError):
            hub.dequeue_batch(5, 0)

    def test_release_all(self, hub):
        hub.acquire_specific(1, 0)
        hub.acquire_specific(1, 2)
        hub.acquire_specific(2, 3)
        hub.release_all(1)
        assert hub.owner_of(0) is None
        assert hub.owner_of(2) is None
        assert hub.owner_of(3) == 2


@settings(max_examples=50, deadline=None)
@given(
    actions=st.lists(
        st.tuples(
            st.sampled_from(["enqueue", "acquire", "drain", "release"]),
            st.integers(min_value=0, max_value=3),  # partition / worker
        ),
        max_size=120,
    )
)
def test_property_ownership_invariants(actions):
    """No partition ever has two owners; no message is lost or duplicated."""
    hub = IntraSocketHub(0, [0, 1, 2, 3])
    owners: dict[int, int] = {}
    enqueued = 0
    drained = 0
    for action, value in actions:
        if action == "enqueue":
            hub.enqueue(msg(value))
            enqueued += 1
        elif action == "acquire":
            worker = value + 10
            pid = hub.acquire_partition(worker)
            if pid is not None:
                assert pid not in owners
                owners[pid] = worker
        elif action == "drain":
            for pid, worker in list(owners.items()):
                drained += len(hub.dequeue_batch(worker, pid, batch_size=1))
        else:  # release
            for pid, worker in list(owners.items()):
                hub.release_partition(worker, pid)
                del owners[pid]
    assert hub.pending_messages == enqueued - drained
    assert hub.pending_messages >= 0
    for pid, worker in owners.items():
        assert hub.owner_of(pid) == worker


@settings(max_examples=60, deadline=None)
@given(
    actions=st.lists(
        st.tuples(
            st.sampled_from(
                ["enqueue", "acquire_cycle", "acquire_hold", "release_held"]
            ),
            st.integers(min_value=0, max_value=5),  # partition / batch / worker
        ),
        max_size=150,
    )
)
def test_property_acquire_matches_linear_scan(actions):
    """Heap-based acquisition picks exactly what the original scan picked.

    The reference is the pre-heap implementation: first partition in
    declaration order with the strictly deepest non-empty unowned queue.
    """
    hub = IntraSocketHub(0, [0, 1, 2, 3, 4, 5])
    held: dict[int, int] = {}

    def reference_best():
        best, best_depth = None, 0
        for pid in hub.partition_ids:
            if hub.owner_of(pid) is not None:
                continue
            depth = hub.queue_depth(pid)
            if depth > best_depth:
                best, best_depth = pid, depth
        return best

    for action, value in actions:
        if action == "enqueue":
            hub.enqueue(msg(value))
        elif action == "acquire_hold":
            worker = 200 + value
            expected = reference_best()
            pid = hub.acquire_partition(worker)
            assert pid == expected
            if pid is not None:
                held[pid] = worker
        elif action == "release_held":
            for pid, worker in list(held.items()):
                hub.release_partition(worker, pid)
                del held[pid]
        else:  # acquire, drain a batch, release
            expected = reference_best()
            pid = hub.acquire_partition(99)
            assert pid == expected
            if pid is not None:
                hub.dequeue_batch(99, pid, batch_size=value + 1)
                hub.release_partition(99, pid)

    # Drain to empty: every remaining acquisition must match the scan.
    for pid, worker in list(held.items()):
        hub.release_partition(worker, pid)
    while True:
        expected = reference_best()
        pid = hub.acquire_partition(99)
        assert pid == expected
        if pid is None:
            break
        hub.dequeue_batch(99, pid, batch_size=64)
        hub.release_partition(99, pid)
    assert hub.pending_messages == 0


class TestMigrationSupport:
    def test_frozen_partition_not_acquirable(self, hub):
        hub.enqueue(msg(0))
        hub.freeze_partition(0)
        assert 0 in hub.frozen_partitions()
        assert not hub.acquire_specific(1, 0)
        assert hub.acquire_partition(1) is None

    def test_frozen_partition_still_enqueues(self, hub):
        hub.freeze_partition(0)
        hub.enqueue(msg(0))
        assert hub.queue_depth(0) == 1

    def test_unfreeze_restores_acquisition(self, hub):
        hub.enqueue(msg(0))
        hub.freeze_partition(0)
        hub.unfreeze_partition(0)
        assert hub.acquire_partition(1) == 0

    def test_evict_returns_queue_and_removes_partition(self, hub):
        hub.enqueue(msg(0, 10))
        hub.enqueue(msg(0, 20))
        hub.enqueue(msg(1, 30))
        hub.freeze_partition(0)
        evicted = hub.evict_partition(0)
        assert [m.cost.instructions for m in evicted] == [10, 20]
        assert 0 not in hub.partition_ids
        assert hub.pending_messages == 1
        assert hub.pending_cost_instructions() == pytest.approx(30)
        with pytest.raises(MessagingError):
            hub.enqueue(msg(0))

    def test_evict_owned_partition_rejected(self, hub):
        hub.acquire_specific(1, 0)
        with pytest.raises(OwnershipError):
            hub.evict_partition(0)

    def test_adopt_makes_partition_homed(self, hub):
        foreign = IntraSocketHub(1, [9])
        foreign.adopt_partition(10)
        foreign.enqueue(msg(10))
        assert foreign.acquire_partition(1) == 10

    def test_adopt_homed_partition_rejected(self, hub):
        with pytest.raises(MessagingError):
            hub.adopt_partition(0)

    def test_evict_then_adopt_round_trip(self, hub):
        """A -> away -> back: the heap/generation machinery stays sound."""
        for _ in range(3):
            hub.enqueue(msg(0))
        hub.freeze_partition(0)
        queue = hub.evict_partition(0)
        hub.adopt_partition(0)
        for message in queue:
            hub.enqueue(message)
        assert hub.acquire_partition(1) == 0
        assert len(hub.dequeue_batch(1, 0, batch_size=8)) == 3
        hub.release_partition(1, 0)
        assert hub.pending_messages == 0
