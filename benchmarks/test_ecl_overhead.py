"""§6.2 — the ECL's own compute overhead.

Paper: "the ECL itself only consumes 2 % of the compute time of a single
hardware thread per socket, which is a negligible number."  The bench
verifies the configured overhead matches and that disabling it changes
measured results only marginally (negligibility).
"""

from repro.ecl.socket_ecl import EclParameters
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, run_experiment
from repro.workloads import KeyValueWorkload, WorkloadVariant

from _shared import heading


def run_pair():
    workload = KeyValueWorkload(WorkloadVariant.NON_INDEXED)
    profile = constant_profile(0.4, duration_s=15.0)
    with_overhead = run_experiment(
        RunConfiguration(workload=workload, profile=profile, policy="ecl")
    )
    without_overhead = run_experiment(
        RunConfiguration(
            workload=workload,
            profile=profile,
            policy="ecl",
            ecl_params=EclParameters(overhead_thread_fraction=0.0),
        )
    )
    return with_overhead, without_overhead


def test_ecl_overhead(run_once):
    with_oh, without_oh = run_once(run_pair)

    params = EclParameters()
    one_thread_ips = 2.6e9  # one hardware thread at the nominal clock
    overhead_ips = params.overhead_thread_fraction * one_thread_ips

    heading("§6.2 — ECL compute overhead")
    print(
        f"configured overhead: {params.overhead_thread_fraction:.1%} of one "
        f"hardware thread per socket ({overhead_ips:.2e} instr/s)"
    )
    print(
        f"energy with overhead:    {with_oh.total_energy_j:9.0f} J "
        f"(mean latency {1000 * with_oh.mean_latency_s():5.1f} ms)"
    )
    print(
        f"energy without overhead: {without_oh.total_energy_j:9.0f} J "
        f"(mean latency {1000 * without_oh.mean_latency_s():5.1f} ms)"
    )

    # The paper's number.
    assert params.overhead_thread_fraction == 0.02
    # Negligibility: removing the overhead changes total energy < 5 %.
    delta = abs(with_oh.total_energy_j - without_oh.total_energy_j)
    assert delta / without_oh.total_energy_j < 0.05
    # And the system behaves the same w.r.t. the latency limit.
    assert abs(
        with_oh.violation_fraction() - without_oh.violation_fraction()
    ) < 0.05
