"""Tests for the structured trace recorder."""

import json

import pytest

from repro.errors import SimulationError
from repro.loadprofiles import constant_profile
from repro.sim import RunConfiguration, SimulationRunner, run_experiment
from repro.telemetry import TraceRecorder, read_trace
from repro.workloads import KeyValueWorkload, WorkloadVariant


def kv():
    return KeyValueWorkload(WorkloadVariant.NON_INDEXED)


def config(policy="ecl", duration_s=2.0):
    return RunConfiguration(
        workload=kv(),
        profile=constant_profile(0.3, duration_s=duration_s),
        policy=policy,
    )


def run_with_tracer(policy="ecl", duration_s=2.0, **recorder_kwargs):
    recorder = TraceRecorder(**recorder_kwargs)
    result = SimulationRunner(
        config(policy, duration_s), observers=[recorder]
    ).run()
    return recorder, result


class TestEventStream:
    def test_stream_structure_matches_run_totals(self):
        recorder, result = run_with_tracer()
        events = recorder.events()
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        kinds = [e["event"] for e in events]
        assert kinds.count("arrival") == result.queries_submitted
        assert kinds.count("completion") == result.queries_completed
        assert kinds.count("sample") == len(result.samples)
        assert recorder.dropped_events == 0

    def test_events_are_time_ordered(self):
        recorder, _ = run_with_tracer(duration_s=1.0)
        times = [e["t"] for e in recorder.events() if "t" in e]
        assert times == sorted(times)

    def test_reconfig_events_carry_before_after_state(self):
        recorder, _ = run_with_tracer(policy="ecl", duration_s=3.0)
        reconfigs = [
            e for e in recorder.events() if e["event"] == "reconfig"
        ]
        assert reconfigs, "the ECL must reconfigure within 3 s"
        for event in reconfigs:
            for side in ("before", "after"):
                assert set(event[side]) == {
                    "active_threads",
                    "core_ghz",
                    "uncore_ghz",
                    "uncore_halted",
                }
        assert any(e["before"] != e["after"] for e in reconfigs)

    def test_baseline_reconfigures_rarely(self):
        """The uncontrolled baseline touches knobs at most on idle
        transitions — orders of magnitude below the ECL."""
        ecl, _ = run_with_tracer(policy="ecl", duration_s=2.0)
        base, _ = run_with_tracer(policy="baseline", duration_s=2.0)

        def reconfigs(recorder):
            return sum(
                1 for e in recorder.events() if e["event"] == "reconfig"
            )

        assert reconfigs(base) <= reconfigs(ecl)

    def test_record_arrivals_off_drops_only_arrivals(self):
        recorder, result = run_with_tracer(record_arrivals=False)
        kinds = [e["event"] for e in recorder.events()]
        assert "arrival" not in kinds
        assert kinds.count("completion") == result.queries_completed
        assert result.queries_submitted > 0

    def test_ring_buffer_bounds_memory(self):
        recorder, _ = run_with_tracer(capacity=50)
        events = recorder.events()
        assert len(events) == 50
        assert recorder.total_events > 50
        assert recorder.dropped_events == recorder.total_events - 50
        # The newest events survive; the oldest were evicted.
        assert events[-1]["event"] == "run_end"
        assert events[0]["event"] != "run_start"

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            TraceRecorder(capacity=0)

    def test_tracing_does_not_change_the_run(self):
        plain = run_experiment(config(duration_s=1.5))
        _, traced = run_with_tracer(duration_s=1.5)
        assert traced.total_energy_j == plain.total_energy_j
        assert traced.latencies_s == plain.latencies_s
        assert traced.samples == plain.samples


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path):
        recorder, _ = run_with_tracer(duration_s=1.0)
        path = tmp_path / "trace.jsonl"
        count = recorder.to_jsonl(path)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert count == len(lines) == len(recorder.events())
        # The in-memory stream is already JSON-faithful: a round trip
        # through disk reproduces it exactly.
        assert read_trace(path) == recorder.events()
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n', encoding="utf-8")
        with pytest.raises(SimulationError):
            read_trace(path)

    def test_read_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(SimulationError):
            read_trace(path)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n', encoding="utf-8")
        assert len(read_trace(path)) == 2
