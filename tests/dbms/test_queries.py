"""Tests for multi-stage query tracking."""

import pytest

from repro.errors import SimulationError
from repro.dbms.messages import Message, WorkCost
from repro.dbms.queries import Query, QueryStage, QueryTracker


def stage(partitions):
    return QueryStage(
        [
            Message(query_id=-1, target_partition=p, cost=WorkCost(10))
            for p in partitions
        ]
    )


class TestQueryConstruction:
    def test_messages_adopt_query_id(self):
        q = Query(arrival_s=1.0, stages=[stage([0, 1])])
        for message in q.stages[0].messages:
            assert message.query_id == q.query_id
            assert message.created_at_s == 1.0

    def test_empty_stages_rejected(self):
        with pytest.raises(SimulationError):
            Query(arrival_s=0.0, stages=[])

    def test_empty_stage_rejected(self):
        with pytest.raises(SimulationError):
            QueryStage([])


class TestTracker:
    def test_single_stage_completion(self):
        tracker = QueryTracker()
        q = Query(arrival_s=1.0, stages=[stage([0, 1])])
        messages = tracker.dispatch(q)
        assert len(messages) == 2
        assert tracker.in_flight == 1

        followups, completion = tracker.on_message_done(messages[0], 1.5)
        assert not followups and completion is None
        followups, completion = tracker.on_message_done(messages[1], 2.0)
        assert not followups
        assert completion is not None
        assert completion.latency_s == pytest.approx(1.0)
        assert tracker.in_flight == 0
        assert tracker.completed_count == 1

    def test_two_stage_flow(self):
        tracker = QueryTracker()
        q = Query(arrival_s=0.0, stages=[stage([0]), stage([1, 2])])
        first = tracker.dispatch(q)
        followups, completion = tracker.on_message_done(first[0], 0.5)
        assert completion is None
        assert len(followups) == 2
        assert all(m.created_at_s == 0.5 for m in followups)

        _, completion = tracker.on_message_done(followups[0], 0.7)
        assert completion is None
        _, completion = tracker.on_message_done(followups[1], 0.9)
        assert completion is not None
        assert completion.latency_s == pytest.approx(0.9)

    def test_double_dispatch_rejected(self):
        tracker = QueryTracker()
        q = Query(arrival_s=0.0, stages=[stage([0])])
        tracker.dispatch(q)
        with pytest.raises(SimulationError):
            tracker.dispatch(q)

    def test_unknown_query_rejected(self):
        tracker = QueryTracker()
        orphan = Message(query_id=424242, target_partition=0, cost=WorkCost(1))
        with pytest.raises(SimulationError):
            tracker.on_message_done(orphan, 0.0)

    def test_many_queries_interleaved(self):
        tracker = QueryTracker()
        queries = [Query(arrival_s=float(i), stages=[stage([0, 1])]) for i in range(5)]
        all_messages = {q.query_id: tracker.dispatch(q) for q in queries}
        completions = []
        # Finish in reverse order.
        for q in reversed(queries):
            for message in all_messages[q.query_id]:
                _, completion = tracker.on_message_done(message, 10.0)
                if completion:
                    completions.append(completion)
        assert len(completions) == 5
        assert tracker.in_flight == 0
        assert tracker.dispatched_count == 5
